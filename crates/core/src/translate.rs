//! Schema-directed query translation `Tr` (§4.4, Theorem 4.3b).
//!
//! `Tr(Q) = Trl(Q, r1)` where the *local translation* `Trl(Q1, A)` produces
//! an ANFA over the target schema equivalent to evaluating `Q1` at (the
//! image of) an `A` element. The translation is schema-directed — each
//! subquery is translated relative to every source type it can be evaluated
//! at — which is what prevents the Figure 7 pitfall of matching
//! default-padded target nodes that no source node generated.
//!
//! Alongside the automaton we maintain the paper's `lab(f, M, A)` function:
//! each final state is labeled with the *source* type (or `str`) its matches
//! correspond to, which drives the concatenation and Kleene cases.
//!
//! `position()` handling refines the paper's case (h), which translates
//! position qualifiers unchanged — incorrect for repeated concatenation
//! children. Here (DESIGN.md §3 item 3):
//!
//! * at a **star** context, position qualifiers on the child step transfer
//!   to the multiplicity step of `path(A, B)` (source child order equals
//!   target repetition order);
//! * at a **concat** context, `position() = k` selects the `k`-th
//!   occurrence's edge path;
//! * at a **disjunction** (or on `text()` / `ε`), positions fold to the
//!   constant `k = 1`;
//! * position qualifiers that cannot be decomposed this way (e.g. under
//!   `¬`/`∨` at a concat context, or on a non-step path) are reported as
//!   [`EmbeddingError::UnsupportedPosition`] instead of being silently
//!   mistranslated.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use xse_anfa::{Anfa, Annot, CompiledAnfa, EvalScratch, StateId, Trans};
use xse_dtd::{Dtd, Production, TypeId};
use xse_rxpath::{shape_key, Qualifier, XrQuery};
use xse_xmltree::{NodeId, XmlTree};

use crate::resolve::ResolvedPath;
use crate::{CompiledEmbedding, EmbeddingError};

/// What a final state's matches correspond to on the source side —
/// the paper's `lab(f, M, A)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Lab {
    /// Matches are images of source elements of this type.
    Type(TypeId),
    /// Matches are copies of source text nodes.
    Str,
}

/// A compiled translation plan: the pre-pruned target-side ANFA `Tr(Q)`,
/// its final-state labels, and the flat [`CompiledAnfa`] transition tables
/// evaluation runs on.
///
/// Plans are what [`CompiledEmbedding::translate`] caches and returns —
/// compile once per query *shape*, evaluate on any number of target
/// documents. [`eval`](TranslatePlan::eval) runs the table-driven
/// evaluator (faster than interpreting the automaton);
/// [`eval_with`](TranslatePlan::eval_with) additionally reuses scratch
/// buffers across calls for an allocation-free hot loop.
pub struct TranslatePlan {
    /// The automaton `Tr(Q)`, pruned.
    pub anfa: Anfa,
    /// `lab()` — final state → source-side label.
    pub labels: HashMap<StateId, Lab>,
    /// Flat transition tables compiled from `anfa`.
    plan: CompiledAnfa,
}

impl TranslatePlan {
    /// Evaluate on a target document at the root (then map results back
    /// through `idM` to compare with the source-side evaluation).
    pub fn eval(&self, t2: &XmlTree) -> Vec<NodeId> {
        self.plan.eval_root(t2)
    }

    /// Evaluate at the root, reusing `scratch` and writing into `out`
    /// (cleared first) — no allocation after warmup.
    pub fn eval_with(&self, t2: &XmlTree, scratch: &mut EvalScratch, out: &mut Vec<NodeId>) {
        self.plan.eval_with(t2, t2.root(), scratch, out);
    }

    /// Size `|Tr(Q)|` (states + transitions + annotation sub-automata) —
    /// bounded by `O(|Q|·|σ|·|S1|)` per Theorem 4.3(b).
    pub fn size(&self) -> usize {
        self.anfa.size()
    }

    /// Number of states of `Tr(Q)`'s main automaton.
    pub fn state_count(&self) -> usize {
        self.anfa.state_count()
    }
}

/// Hit/miss/occupancy counters of one embedding's plan cache. Counters
/// are cumulative over the engine's lifetime; `entries` is the current
/// occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Translations answered from the cache.
    pub hits: u64,
    /// Translations that compiled a fresh plan (including failed
    /// compiles, which are not cached).
    pub misses: u64,
    /// Plans currently cached.
    pub entries: u64,
}

/// Plans cached beyond this per-embedding bound evict the least recently
/// used entry.
const PLAN_CACHE_CAP: usize = 256;

/// Bounded per-embedding plan cache keyed by canonical query shape
/// ([`shape_key`]). Interior-mutable so `translate` stays `&self`; the
/// lock is only held for lookups and inserts, never during compilation.
#[derive(Default)]
pub(crate) struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<String, (Arc<TranslatePlan>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    fn lookup(&self, key: &str) -> Option<Arc<TranslatePlan>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((plan, used)) => {
                *used = tick;
                let plan = Arc::clone(plan);
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert `plan` under `key`, unless a racing translation of the same
    /// shape got there first — then the incumbent wins, so every caller
    /// shares one plan per shape.
    fn insert(&self, key: String, plan: Arc<TranslatePlan>) -> Arc<TranslatePlan> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((existing, used)) = inner.map.get_mut(&key) {
            *used = tick;
            return Arc::clone(existing);
        }
        inner.map.insert(key, (Arc::clone(&plan), tick));
        if inner.map.len() > PLAN_CACHE_CAP {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        plan
    }

    fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().unwrap();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len() as u64,
        }
    }
}

/// Working result of `Trl`: an automaton fragment plus labeled finals.
struct Trl {
    anfa: Anfa,
    /// Final states with labels (kept in sync with the anfa's final flags).
    finals: Vec<(StateId, Lab)>,
}

impl Trl {
    fn fail() -> Trl {
        Trl {
            anfa: Anfa::fail(),
            finals: Vec::new(),
        }
    }

    fn is_fail(&self) -> bool {
        self.finals.is_empty()
    }

    /// Import `other` into `self.anfa`, wiring ε from `from`; returns
    /// `other`'s finals offset into `self`.
    fn splice(&mut self, from: StateId, other: &Trl) -> Vec<(StateId, Lab)> {
        let off = self.anfa.import(&other.anfa);
        self.anfa.add_transition(
            from,
            Trans::Eps,
            StateId::from_index(other.anfa.start().index() + off as usize),
        );
        other
            .finals
            .iter()
            .map(|&(f, lab)| (StateId::from_index(f.index() + off as usize), lab))
            .collect()
    }
}

impl CompiledEmbedding {
    /// Translate a source query into a shared [`TranslatePlan`]:
    /// compile-or-lookup in the embedding's bounded plan cache, keyed by
    /// the query's canonical shape ([`shape_key`]). Repeated translations
    /// of equivalent queries return the same `Arc` without recompiling;
    /// [`CompiledEmbedding::plan_stats`] reports the hit/miss counters.
    ///
    /// Translation is deterministic, so a cached plan is byte-identical
    /// to a fresh [`compile_translation`](Self::compile_translation) of
    /// the same query.
    ///
    /// # Errors
    /// Propagates translation failures (e.g. unsupported `position()`
    /// shapes); failures are not cached.
    pub fn translate(&self, q: &XrQuery) -> Result<Arc<TranslatePlan>, EmbeddingError> {
        let key = shape_key(q);
        if let Some(plan) = self.plan_cache.lookup(&key) {
            return Ok(plan);
        }
        // Compile outside the cache lock: translation can be expensive and
        // is deterministic, so a racing duplicate compile is benign (the
        // first insert wins).
        let plan = Arc::new(self.compile_translation(q)?);
        Ok(self.plan_cache.insert(key, plan))
    }

    /// Translate a source query unconditionally — `Tr(Q) = Trl(Q, r1)`,
    /// pruned and compiled to transition tables — bypassing the plan
    /// cache. This is the raw one-shot path [`translate`](Self::translate)
    /// amortizes away; benchmarks use it as the cold baseline.
    ///
    /// # Errors
    /// Propagates translation failures.
    pub fn compile_translation(&self, q: &XrQuery) -> Result<TranslatePlan, EmbeddingError> {
        let mut t = self.trl(q, self.source.root())?;
        let remap = t.anfa.prune_map();
        let labels = t
            .finals
            .into_iter()
            .filter_map(|(f, lab)| remap[f.index()].map(|nf| (nf, lab)))
            .collect();
        let plan = CompiledAnfa::compile(&t.anfa);
        Ok(TranslatePlan {
            anfa: t.anfa,
            labels,
            plan,
        })
    }

    /// This embedding's plan-cache counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// The local translation `Trl(Q1, A)`.
    fn trl(&self, q: &XrQuery, a: TypeId) -> Result<Trl, EmbeddingError> {
        Ok(match q {
            // (a) ε — empty automaton, final at start, labeled A.
            XrQuery::Empty => {
                let anfa = Anfa::empty_query();
                let start = anfa.start();
                Trl {
                    anfa,
                    finals: vec![(start, Lab::Type(a))],
                }
            }
            // (b) a label B: union of the paths of all (A → B) edges.
            XrQuery::Label(name) => self.trl_label(a, name, None),
            // p/text(): the str edge's path.
            XrQuery::Text => self.trl_text(a),
            XrQuery::DescOrSelf => {
                // Fragment-X sugar: `//` ≡ (B1 ∪ … ∪ Bn)* over the source
                // alphabet; delegate to the Kleene case.
                let labels: Vec<XrQuery> = self
                    .source
                    .types()
                    .map(|t| XrQuery::label(self.source.name(t)))
                    .collect();
                let any = labels
                    .into_iter()
                    .reduce(|x, y| x.or(y))
                    .expect("DTD has at least a root type");
                self.trl(&any.star(), a)?
            }
            // (c) union.
            XrQuery::Union(x, y) => {
                let tx = self.trl(x, a)?;
                let ty = self.trl(y, a)?;
                let mut out = Trl {
                    anfa: Anfa::new(),
                    finals: Vec::new(),
                };
                let start = out.anfa.start();
                let fx = out.splice(start, &tx);
                let fy = out.splice(start, &ty);
                out.finals = [fx, fy].concat();
                out
            }
            // (d) concatenation: continue per distinct final label.
            XrQuery::Seq(x, y) => {
                let tx = self.trl(x, a)?;
                self.continue_with(tx, y)?
            }
            // (k) Kleene closure.
            XrQuery::Star(p) => self.trl_star(p, a)?,
            // (e) qualified paths (with the position() special cases).
            XrQuery::Qualified(p, q) => self.trl_qualified(p, q, a)?,
        })
    }

    /// Case (b): all edges from `a` to children labeled `name` (several for
    /// repeated concatenation children), optionally restricted to the
    /// occurrence selected by a position qualifier.
    fn trl_label(&self, a: TypeId, name: &str, occurrence: Option<usize>) -> Trl {
        let prod = self.source.production(a);
        let mut out = Trl {
            anfa: Anfa::new(),
            finals: Vec::new(),
        };
        let start = out.anfa.start();
        let mut hits = 0usize;
        let child_of = |slot: usize| -> Option<TypeId> {
            match prod {
                Production::Concat(cs) => cs.get(slot).copied(),
                Production::Disjunction { alts, .. } => alts.get(slot).copied(),
                Production::Star(b) => Some(*b),
                _ => None,
            }
        };
        let mut occ_seen = 0usize;
        for slot in 0..self.paths_of(a).len() {
            let Some(cty) = child_of(slot) else { continue };
            if self.source.name(cty) != name {
                continue;
            }
            occ_seen += 1;
            if let Some(k) = occurrence {
                // Star contexts have a single slot; occurrence selection
                // applies to concat contexts (k-th same-label occurrence).
                if matches!(prod, Production::Concat(_)) && occ_seen != k {
                    continue;
                }
                if matches!(prod, Production::Disjunction { .. }) && k != 1 {
                    continue;
                }
            }
            let chain = self.chain_automaton(
                a,
                slot,
                occurrence.filter(|_| matches!(prod, Production::Star(_))),
            );
            let finals = out.splice(
                start,
                &Trl {
                    anfa: chain,
                    finals: Vec::new(),
                },
            );
            debug_assert!(finals.is_empty());
            // The chain's final is its last state; recover it from the
            // import: path_chain marks finals, so collect them directly.
            hits += 1;
            let _ = hits;
            for f in out.anfa.finals() {
                if !out.finals.iter().any(|&(g, _)| g == f) {
                    out.finals.push((f, Lab::Type(cty)));
                }
            }
        }
        out
    }

    /// The str edge's path (query `text()` at context `a`).
    fn trl_text(&self, a: TypeId) -> Trl {
        if !matches!(self.source.production(a), Production::Str) {
            return Trl::fail();
        }
        let chain = self.chain_automaton(a, 0, None);
        let finals: Vec<(StateId, Lab)> =
            chain.finals().into_iter().map(|f| (f, Lab::Str)).collect();
        Trl {
            anfa: chain,
            finals,
        }
    }

    /// The linear automaton of the path at `(a, slot)`. Unpositioned chains
    /// come straight out of the precomputed translation table; `mult_pos`
    /// (an extra `position()` check at the multiplicity step, used when a
    /// source star child is selected by position) forces a fresh compile.
    fn chain_automaton(&self, a: TypeId, slot: usize, mult_pos: Option<usize>) -> Anfa {
        match mult_pos {
            None => self.chains[a.index()][slot].clone(),
            Some(_) => compile_chain(&self.target, &self.resolved[a.index()][slot], mult_pos),
        }
    }

    /// Case (d): feed each final of `tx` (grouped by label) into the
    /// translation of `rest` at that label's type.
    fn continue_with(&self, tx: Trl, rest: &XrQuery) -> Result<Trl, EmbeddingError> {
        let mut out = tx;
        let prior = std::mem::take(&mut out.finals);
        // One continuation automaton per distinct label.
        let mut by_lab: HashMap<Lab, Vec<StateId>> = HashMap::new();
        for (f, lab) in prior {
            by_lab.entry(lab).or_default().push(f);
        }
        let mut labs: Vec<Lab> = by_lab.keys().copied().collect();
        labs.sort_by_key(|l| match l {
            Lab::Type(t) => t.index(),
            Lab::Str => usize::MAX,
        });
        for lab in labs {
            let states = &by_lab[&lab];
            let cont = match lab {
                Lab::Type(t) => self.trl(rest, t)?,
                // Nothing continues past a text node except ε.
                Lab::Str => match rest {
                    XrQuery::Empty => {
                        for &f in states {
                            out.anfa.set_final(f, true);
                            out.finals.push((f, Lab::Str));
                        }
                        continue;
                    }
                    _ => Trl::fail(),
                },
            };
            if cont.is_fail() {
                for &f in states {
                    out.anfa.set_final(f, false);
                }
                continue;
            }
            // Import once, ε from every final with this label.
            let off = out.anfa.import(&cont.anfa);
            let cont_start = StateId::from_index(cont.anfa.start().index() + off as usize);
            for &f in states {
                out.anfa.set_final(f, false);
                out.anfa.add_transition(f, Trans::Eps, cont_start);
            }
            for (f, l) in &cont.finals {
                out.finals
                    .push((StateId::from_index(f.index() + off as usize), *l));
            }
        }
        Ok(out)
    }

    /// Case (k): `p*` — one copy of `Trl(p, B)` per source type `B`
    /// reachable through iterations, with every `B`-labeled final wired to
    /// that copy's start (also for already-visited types: cycles need the
    /// back edges the paper's loop leaves implicit).
    fn trl_star(&self, p: &XrQuery, a: TypeId) -> Result<Trl, EmbeddingError> {
        let mut out = Trl {
            anfa: Anfa::empty_query(),
            finals: Vec::new(),
        };
        let hub = out.anfa.start();
        out.finals.push((hub, Lab::Type(a)));
        // Per source type: the start state of its imported copy.
        let mut copies: HashMap<TypeId, Option<StateId>> = HashMap::new();
        // Worklist of states needing a continuation into `p` at a type.
        let mut pending: Vec<(StateId, TypeId)> = vec![(hub, a)];
        while let Some((state, t)) = pending.pop() {
            let start = match copies.get(&t) {
                Some(s) => *s,
                None => {
                    let copy = self.trl(p, t)?;
                    if copy.is_fail() {
                        copies.insert(t, None);
                        None
                    } else {
                        let off = out.anfa.import(&copy.anfa);
                        let cstart = StateId::from_index(copy.anfa.start().index() + off as usize);
                        copies.insert(t, Some(cstart));
                        for (f, lab) in &copy.finals {
                            let nf = StateId::from_index(f.index() + off as usize);
                            out.finals.push((nf, *lab));
                            // Iterations continue from every element final.
                            if let Lab::Type(b) = lab {
                                pending.push((nf, *b));
                            }
                        }
                        Some(cstart)
                    }
                }
            };
            if let Some(cstart) = start {
                out.anfa.add_transition(state, Trans::Eps, cstart);
            }
        }
        Ok(out)
    }

    /// Case (e) with the position() special cases.
    fn trl_qualified(&self, p: &XrQuery, q: &Qualifier, a: TypeId) -> Result<Trl, EmbeddingError> {
        // Decompose the qualifier into top-level conjuncts, separating
        // position-only parts from position-free parts. Constant conjuncts
        // (pure true/¬true combinations) fold away first.
        let mut conjuncts = Vec::new();
        flatten_and(q, &mut conjuncts);
        let mut pos_only: Vec<&Qualifier> = Vec::new();
        let mut pos_free: Vec<&Qualifier> = Vec::new();
        for c in conjuncts {
            match fold_const(c) {
                Some(true) => continue, // [true] is no constraint
                Some(false) => return Ok(Trl::fail()),
                None => {}
            }
            if qualifier_is_position_only(c) {
                pos_only.push(c);
            } else if qualifier_is_position_free(c) {
                pos_free.push(c);
            } else {
                return Err(EmbeddingError::UnsupportedPosition(format!("{p}[{q}]")));
            }
        }

        // Translate the qualified path according to the step shape.
        let mut base = if pos_only.is_empty() {
            self.trl(p, a)?
        } else {
            match p {
                XrQuery::Label(name) => match self.source.production(a) {
                    Production::Star(_) => {
                        // Annotate the multiplicity step with the full
                        // position constraint (sibling order is preserved).
                        let mut t = self.trl_label(a, name, None);
                        if !t.is_fail() {
                            let annot = positions_to_annot(&pos_only);
                            annotate_multiplicity(&mut t, self, a, annot);
                        }
                        t
                    }
                    Production::Concat(_) | Production::Disjunction { .. } => {
                        // Only a plain `position() = k` conjunction selects
                        // an occurrence.
                        let Some(k) = single_position(&pos_only) else {
                            return Err(EmbeddingError::UnsupportedPosition(format!("{p}[{q}]")));
                        };
                        self.trl_label(a, name, Some(k))
                    }
                    _ => Trl::fail(),
                },
                XrQuery::Text | XrQuery::Empty => {
                    // A unique node: positions fold to the constant k = 1.
                    match single_position(&pos_only) {
                        Some(1) => self.trl(p, a)?,
                        Some(_) => Trl::fail(),
                        None => {
                            return Err(EmbeddingError::UnsupportedPosition(format!("{p}[{q}]")))
                        }
                    }
                }
                _ => return Err(EmbeddingError::UnsupportedPosition(format!("{p}[{q}]"))),
            }
        };

        // Attach the position-free conjuncts at the finals, translated at
        // each final's source type.
        for c in pos_free {
            let finals = base.finals.clone();
            for (f, lab) in finals {
                let annot = self.trl_qual(c, lab)?;
                if let Some(annot) = annot {
                    base.anfa.annotate(f, annot);
                }
            }
        }
        Ok(base)
    }

    /// Cases (f)–(j): qualifier → annotation, at context label `lab`.
    fn trl_qual(&self, q: &Qualifier, lab: Lab) -> Result<Option<Annot>, EmbeddingError> {
        let ctx = match lab {
            Lab::Type(t) => Some(t),
            Lab::Str => None,
        };
        Ok(Some(match q {
            Qualifier::True => return Ok(None),
            Qualifier::Path(p) => {
                let sub = match ctx {
                    Some(t) => self.trl(p, t)?.anfa,
                    None => Anfa::fail(),
                };
                Annot::Exists(Box::new(sub))
            }
            Qualifier::TextEq(p, c) => {
                let sub = match ctx {
                    Some(t) => self.trl(p, t)?.anfa,
                    None => Anfa::fail(),
                };
                Annot::ExistsValue(Box::new(sub), c.clone())
            }
            Qualifier::Position(_) => {
                // Bare positions are handled by trl_qualified; reaching here
                // means an unsupported nesting.
                return Err(EmbeddingError::UnsupportedPosition(q.to_string()));
            }
            Qualifier::Not(x) => match self.trl_qual(x, lab)? {
                None => Annot::Exists(Box::new(Anfa::fail())), // ¬true
                Some(ax) => Annot::Not(Box::new(ax)),
            },
            Qualifier::And(x, y) => match (self.trl_qual(x, lab)?, self.trl_qual(y, lab)?) {
                (None, None) => return Ok(None),
                (Some(ax), None) | (None, Some(ax)) => ax,
                (Some(ax), Some(ay)) => Annot::And(Box::new(ax), Box::new(ay)),
            },
            Qualifier::Or(x, y) => {
                match (self.trl_qual(x, lab)?, self.trl_qual(y, lab)?) {
                    (None, _) | (_, None) => return Ok(None), // true ∨ q
                    (Some(ax), Some(ay)) => Annot::Or(Box::new(ax), Box::new(ay)),
                }
            }
        }))
    }
}

/// Evaluate a qualifier that contains no atoms other than `true` to its
/// constant value; `None` when it has real atoms.
fn fold_const(q: &Qualifier) -> Option<bool> {
    match q {
        Qualifier::True => Some(true),
        Qualifier::Not(x) => fold_const(x).map(|b| !b),
        Qualifier::And(a, b) => Some(fold_const(a)? && fold_const(b)?),
        Qualifier::Or(a, b) => Some(fold_const(a)? || fold_const(b)?),
        _ => None,
    }
}

fn flatten_and<'q>(q: &'q Qualifier, out: &mut Vec<&'q Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Is the qualifier built exclusively from position atoms (and `true`)?
fn qualifier_is_position_only(q: &Qualifier) -> bool {
    match q {
        Qualifier::True | Qualifier::Position(_) => true,
        Qualifier::Not(x) => qualifier_is_position_only(x),
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qualifier_is_position_only(a) && qualifier_is_position_only(b)
        }
        Qualifier::Path(_) | Qualifier::TextEq(_, _) => false,
    }
}

/// Does the qualifier avoid bare position atoms entirely (positions inside
/// nested path qualifiers are fine — they recurse through `trl`)?
fn qualifier_is_position_free(q: &Qualifier) -> bool {
    match q {
        Qualifier::True | Qualifier::Path(_) | Qualifier::TextEq(_, _) => true,
        Qualifier::Position(_) => false,
        Qualifier::Not(x) => qualifier_is_position_free(x),
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qualifier_is_position_free(a) && qualifier_is_position_free(b)
        }
    }
}

/// If the conjunction is exactly one `position() = k` atom, return `k`.
fn single_position(pos_only: &[&Qualifier]) -> Option<usize> {
    match pos_only {
        [Qualifier::Position(k)] => Some(*k),
        _ => None,
    }
}

/// Boolean combination of position atoms → annotation.
fn positions_to_annot(pos_only: &[&Qualifier]) -> Annot {
    fn conv(q: &Qualifier) -> Annot {
        match q {
            Qualifier::Position(k) => Annot::Position(*k),
            Qualifier::True => Annot::Not(Box::new(Annot::Exists(Box::new(Anfa::fail())))),
            Qualifier::Not(x) => Annot::Not(Box::new(conv(x))),
            Qualifier::And(a, b) => Annot::And(Box::new(conv(a)), Box::new(conv(b))),
            Qualifier::Or(a, b) => Annot::Or(Box::new(conv(a)), Box::new(conv(b))),
            _ => unreachable!("checked position-only"),
        }
    }
    pos_only
        .iter()
        .map(|q| conv(q))
        .reduce(|a, b| Annot::And(Box::new(a), Box::new(b)))
        .expect("nonempty")
}

/// Compile a resolved path into a linear automaton; `mult_pos` attaches
/// an extra `position()` check at the multiplicity step (used when a
/// source star child is selected by position).
fn compile_chain(target: &Dtd, rp: &ResolvedPath, mult_pos: Option<usize>) -> Anfa {
    let mut m = Anfa::new();
    let mut cur = m.start();
    let mult_idx = rp.first_star_step();
    for (i, step) in rp.steps.iter().enumerate() {
        let next = m.add_state();
        m.add_transition(cur, Trans::Label(target.name(step.ty).into()), next);
        if step.needs_pos_check {
            if let Some(k) = step.pos {
                m.annotate(next, Annot::Position(k));
            }
        }
        if Some(i) == mult_idx {
            if let Some(k) = mult_pos {
                m.annotate(next, Annot::Position(k));
            }
        }
        cur = next;
    }
    if rp.text_tail {
        let next = m.add_state();
        m.add_transition(cur, Trans::Text, next);
        cur = next;
    }
    m.set_final(cur, true);
    m
}

/// Precompile every `(source type, edge slot)` path into its base chain
/// automaton — the translation table a [`CompiledEmbedding`] carries so
/// `Tr` clones chains instead of rebuilding them per query.
pub(crate) fn chain_tables(target: &Dtd, resolved: &[Vec<ResolvedPath>]) -> Vec<Vec<Anfa>> {
    resolved
        .iter()
        .map(|per_type| {
            per_type
                .iter()
                .map(|rp| compile_chain(target, rp, None))
                .collect()
        })
        .collect()
}

/// Attach `annot` at the multiplicity state of the (single) star path of
/// source type `a` inside a freshly built `trl_label` automaton.
fn annotate_multiplicity(t: &mut Trl, emb: &CompiledEmbedding, a: TypeId, annot: Annot) {
    let rp = &emb.paths_of(a)[0];
    let mult = rp.first_star_step().expect("star source edge");
    // trl_label built: start --ε--> chain of |steps| states; the chain
    // states come right after the hub start (state 0) in import order, so
    // the multiplicity state is 1 (chain start) + mult + 1.
    let state = StateId::from_index(1 + mult + 1);
    t.anfa.annotate(state, annot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::tests::{wrap, wrap_compiled};
    use crate::instmap::tests::{fig1, fig1_embedding};
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    /// End-to-end check: Q(T) == idM(Tr(Q)(σd(T))).
    fn preserved(e: &CompiledEmbedding, t1: &xse_xmltree::XmlTree, queries: &[&str]) {
        let out = e.apply(t1).unwrap();
        for qs in queries {
            let q = parse_query(qs).unwrap();
            let direct = q.eval(t1);
            let tr = e.translate(&q).unwrap();
            let got = tr.eval(&out.tree);
            let mut mapped: Vec<_> = out.idmap.map_result(got.iter().copied()).collect();
            mapped.sort();
            let mut want = direct.clone();
            want.sort();
            assert_eq!(
                mapped, want,
                "query {qs}: target results {got:?} map to {mapped:?}, expected {want:?}"
            );
            // Nothing a translated query matches may be padding.
            assert_eq!(
                got.len(),
                mapped.len(),
                "query {qs} matched default-padding nodes"
            );
        }
    }

    #[test]
    fn wrap_translation_preserves_queries() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let t1 = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c><c>1</c></b></r>").unwrap();
        preserved(
            &e,
            &t1,
            &[
                ".",
                "a",
                "b",
                "b/c",
                "a/text()",
                "b/c/text()",
                "b/c[position() = 2]",
                "b/c[position() = 2]/text()",
                "b/c[text() = '1']",
                "a | b/c",
                "b[c]",
                "b[not c]",
                "a[text() = 'hi']",
                "a[text() = 'nope']",
                "b/c[position() = 9]",
            ],
        );
    }

    #[test]
    fn school_translation_preserves_queries() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>CS331</cno><title>DB</title><type><regular><prereq>\
                  <class><cno>CS240</cno><title>Algo</title><type><project>p1</project></type></class>\
                  <class><cno>CS101</cno><title>Intro</title><type><regular><prereq/></regular></type></class>\
               </prereq></regular></type></class>\
               <class><cno>CS499</cno><title>T</title><type><project>p3</project></type></class>\
             </db>",
        )
        .unwrap();
        preserved(
            &e,
            &t1,
            &[
                "class",
                "class/cno/text()",
                "class[cno/text() = 'CS331']",
                "class/type/regular",
                "class/type/project",
                "class[type/project]/cno",
                "class[position() = 2]/cno/text()",
                // Example 4.8: transitive prerequisites of CS331.
                "class[cno/text() = 'CS331']/(type/regular/prereq/class)*",
                "class[cno/text() = 'CS331']/(type/regular/prereq/class)*/cno/text()",
                "(class/type/regular/prereq/class)*",
                "class/type/regular/prereq/class[position() = 2]",
                "class[not type/regular]",
                ".//cno",
                ".//class[type/project]/title/text()",
            ],
        );
    }

    #[test]
    fn example_4_8_shape() {
        // The translated Example 4.8 query must be expressible and match
        // the Figure 6 automaton's behaviour: navigate to course through
        // courses/current and loop through category/mandatory/regular/
        // required/prereq/course.
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let q = parse_query("class[cno/text() = 'CS331']/(type/regular/prereq/class)*").unwrap();
        let tr = e.translate(&q).unwrap();
        // Bound of Theorem 4.3(b): |Tr(Q)| = O(|Q| · |σ| · |S1|).
        let bound = q.size() * e.size() * s0.type_count();
        assert!(
            tr.size() <= bound,
            "automaton size {} exceeds O-bound witness {bound}",
            tr.size()
        );
        // lab() labels finals with source types.
        assert!(!tr.labels.is_empty());
        let class_ty = s0.type_id("class").unwrap();
        assert!(tr.labels.values().all(|&l| l == super::Lab::Type(class_ty)));
    }

    #[test]
    fn figure_7_padding_is_not_matched() {
        // Figure 7: source r → A+ε, A → B+ε, B → C+ε... the paper's
        // example uses r → A? etc. with identity paths; a naive
        // substitution would match mindef-created C nodes. Model:
        // S1: r → A+ε; A → B+ε; B → C+ε; C → ε
        // S2: r → A; A → B; B → C; C → ε... but identity paths from
        // disjunction edges need OR paths, so target mirrors the source.
        let s1 = xse_dtd::Dtd::builder("r")
            .disjunction_opt("r", &["A"])
            .disjunction_opt("A", &["B"])
            .disjunction_opt("B", &["C"])
            .empty("C")
            .build()
            .unwrap();
        let s2 = xse_dtd::Dtd::builder("r")
            .disjunction_opt("r", &["A"])
            .disjunction_opt("A", &["B"])
            .disjunction_opt("B", &["C"])
            .empty("C")
            .build()
            .unwrap();
        let e = crate::EmbeddingBuilder::new(s1, s2)
            .edge("r", "A", "A")
            .edge("A", "B", "B")
            .edge("B", "C", "C")
            .build()
            .unwrap();
        let t1 = parse_xml("<r><A><B/></A></r>").unwrap();
        preserved(&e, &t1, &["(A | B | C)*", "A/B", "A/B/C", ".//C"]);
    }

    #[test]
    fn unsupported_positions_error_cleanly() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let q = parse_query("(a | b)[position() = 1]").unwrap();
        assert!(matches!(
            e.translate(&q),
            Err(EmbeddingError::UnsupportedPosition(_))
        ));
        // position under Or at a concat context is also unsupported…
        let q = parse_query("a[position() = 1 or b]").unwrap();
        assert!(matches!(
            e.translate(&q),
            Err(EmbeddingError::UnsupportedPosition(_))
        ));
    }

    #[test]
    fn star_context_boolean_positions_work() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let t1 = parse_xml("<r><a>x</a><b><c>1</c><c>2</c><c>3</c></b></r>").unwrap();
        preserved(
            &e,
            &t1,
            &[
                "b/c[not position() = 2]",
                "b/c[position() = 1 or position() = 3]/text()",
                "b/c[position() = 2 and text() = '2']",
            ],
        );
    }

    #[test]
    fn plan_cache_shares_plans_across_equivalent_queries() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let q1 = parse_query("b/c").unwrap();
        let first = e.translate(&q1).unwrap();
        assert_eq!(
            e.plan_stats(),
            crate::PlanCacheStats {
                hits: 0,
                misses: 1,
                entries: 1
            }
        );
        let second = e.translate(&q1).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "repeat translation must share one plan"
        );
        // A different spelling of the same shape also hits.
        let q2 = parse_query("./b[true]/c").unwrap();
        let third = e.translate(&q2).unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &third));
        assert_eq!(
            e.plan_stats(),
            crate::PlanCacheStats {
                hits: 2,
                misses: 1,
                entries: 1
            }
        );
        // Failures are counted as misses but never cached.
        let bad = parse_query("(a | b)[position() = 1]").unwrap();
        assert!(e.translate(&bad).is_err());
        assert!(e.translate(&bad).is_err());
        let stats = e.plan_stats();
        assert_eq!((stats.misses, stats.entries), (3, 1));
    }

    #[test]
    fn plan_eval_matches_interpreted_anfa_eval() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let t1 = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c><c>1</c></b></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        for qs in [
            "b/c",
            "b/c[text() = '1']",
            "b/c[position() = 2]/text()",
            "a | b/c",
            "b[not c]",
        ] {
            let tr = e.translate(&parse_query(qs).unwrap()).unwrap();
            assert_eq!(
                tr.eval(&out.tree),
                tr.anfa.eval_root(&out.tree),
                "plan eval of {qs} diverges from interpreted eval"
            );
        }
    }

    #[test]
    fn concurrent_translation_is_byte_identical_to_sequential() {
        let (s0, s) = fig1();
        let e = std::sync::Arc::new(fig1_embedding(&s0, &s));
        let queries = [
            "class/cno/text()",
            "class[cno/text() = 'CS331']/(type/regular/prereq/class)*",
            ".//cno",
            "class[type/project]/title",
        ];
        // Sequential reference: raw compiles, no cache involved.
        let reference: Vec<String> = queries
            .iter()
            .map(|qs| {
                let tr = e.compile_translation(&parse_query(qs).unwrap()).unwrap();
                let mut labels: Vec<_> = tr.labels.iter().map(|(s, l)| (*s, *l)).collect();
                labels.sort_by_key(|(s, _)| s.index());
                format!("{}{labels:?}", tr.anfa)
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let e = std::sync::Arc::clone(&e);
                let reference = &reference;
                scope.spawn(move || {
                    for (qs, want) in queries.iter().zip(reference) {
                        let tr = e.translate(&parse_query(qs).unwrap()).unwrap();
                        let mut labels: Vec<_> = tr.labels.iter().map(|(s, l)| (*s, *l)).collect();
                        labels.sort_by_key(|(s, _)| s.index());
                        let got = format!("{}{labels:?}", tr.anfa);
                        assert_eq!(&got, want, "{qs}: threaded translation diverged");
                    }
                });
            }
        });
    }

    #[test]
    fn nonexistent_labels_translate_to_fail() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let q = parse_query("ghost/child").unwrap();
        let tr = e.translate(&q).unwrap();
        assert!(tr.anfa.is_fail());
        let t1 = parse_xml("<r><a>x</a><b/></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        assert!(tr.eval(&out.tree).is_empty());
    }
}
