//! Useless-state removal.
//!
//! §4.4 assumes "a standard useless state removal algorithm is run on each
//! completed automaton, which removes states that cannot reach a final
//! state"; an automaton with no final states is the `Fail` automaton.

use crate::{Anfa, StateId, Trans};

impl Anfa {
    /// `true` iff no final state is reachable from the start — the automaton
    /// is equivalent to [`Anfa::fail`].
    pub fn is_fail(&self) -> bool {
        let reach = self.forward_reachable();
        !(0..self.states.len()).any(|i| reach[i] && self.states[i].is_final)
    }

    /// Remove states that are unreachable from the start or cannot reach a
    /// final state. The start state is always kept (possibly as the sole
    /// state of a `Fail` automaton). Sub-automata in annotations are pruned
    /// recursively; an annotation's own `Fail`-ness is semantic (an
    /// `Exists(Fail)` gate is simply always false) and left to evaluation.
    pub fn prune(&mut self) {
        let _ = self.prune_map();
    }

    /// Like [`Anfa::prune`], returning for each old state its new id
    /// (`None` for removed states) so callers can remap external
    /// bookkeeping such as the query translation's `lab()` function.
    pub fn prune_map(&mut self) -> Vec<Option<StateId>> {
        // Recurse into annotation sub-automata first.
        for st in &mut self.states {
            if let Some(a) = &mut st.annot {
                prune_annot(a);
            }
        }
        let fwd = self.forward_reachable();
        let bwd = self.backward_from_finals();
        let keep: Vec<bool> = (0..self.states.len()).map(|i| fwd[i] && bwd[i]).collect();
        // Always keep the start.
        let mut remap = vec![u32::MAX; self.states.len()];
        let mut new_states = Vec::new();
        for (i, st) in self.states.iter().enumerate() {
            if keep[i] || i == self.start.index() {
                remap[i] = new_states.len() as u32;
                new_states.push(st.clone());
            }
        }
        for st in &mut new_states {
            st.transitions
                .retain(|(_, to)| remap[to.index()] != u32::MAX);
            for (_, to) in &mut st.transitions {
                *to = StateId(remap[to.index()]);
            }
        }
        self.start = StateId(remap[self.start.index()]);
        self.states = new_states;
        remap
            .into_iter()
            .map(|i| (i != u32::MAX).then_some(StateId(i)))
            .collect()
    }

    fn forward_reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![self.start];
        seen[self.start.index()] = true;
        while let Some(s) = stack.pop() {
            for (_, to) in &self.states[s.index()].transitions {
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    stack.push(*to);
                }
            }
        }
        seen
    }

    fn backward_from_finals(&self) -> Vec<bool> {
        let n = self.states.len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, st) in self.states.iter().enumerate() {
            for (_, to) in &st.transitions {
                rev[to.index()].push(i as u32);
            }
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| self.states[i].is_final).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p as usize);
                }
            }
        }
        seen
    }

    /// Prune and report whether the automaton degenerated to `Fail`.
    pub fn prune_check(&mut self) -> bool {
        self.prune();
        self.is_fail()
    }

    /// Remove ε-self-loops and duplicate transitions (cheap cosmetic
    /// normalization after many concatenations).
    pub fn simplify_transitions(&mut self) {
        for (i, st) in self.states.iter_mut().enumerate() {
            st.transitions
                .retain(|(t, to)| !(matches!(t, Trans::Eps) && to.index() == i));
            let mut seen = Vec::new();
            st.transitions.retain(|tr| {
                if seen.contains(tr) {
                    false
                } else {
                    seen.push(tr.clone());
                    true
                }
            });
        }
    }
}

fn prune_annot(a: &mut crate::Annot) {
    use crate::Annot;
    match a {
        Annot::Exists(m) | Annot::ExistsValue(m, _) => m.prune(),
        Annot::Position(_) => {}
        Annot::Not(x) => prune_annot(x),
        Annot::And(x, y) | Annot::Or(x, y) => {
            prune_annot(x);
            prune_annot(y);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Anfa, Trans};
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    #[test]
    fn prune_drops_dead_branches() {
        // a | (dead branch that never reaches a final)
        let mut m = Anfa::label("a");
        let dead = m.add_state();
        m.add_transition(m.start(), Trans::Label("x".into()), dead);
        let before = m.state_count();
        m.prune();
        assert_eq!(m.state_count(), before - 1);
        assert!(!m.is_fail());
    }

    #[test]
    fn fail_detection() {
        let mut m = Anfa::label("a");
        let f = m.finals()[0];
        m.set_final(f, false);
        assert!(m.is_fail());
        m.prune();
        assert_eq!(m.state_count(), 1, "only the start survives");
        assert!(m.prune_check());
    }

    #[test]
    fn prune_preserves_semantics() {
        let tree = parse_xml("<r><a><b/></a><c/></r>").unwrap();
        for q in ["a/b | c", "(a | c)*", "a[b]"] {
            let parsed = parse_query(q).unwrap();
            let m0 = Anfa::from_query(&parsed).unwrap();
            let mut m1 = m0.clone();
            m1.prune();
            m1.simplify_transitions();
            assert_eq!(m0.eval_root(&tree), m1.eval_root(&tree), "{q}");
        }
    }

    #[test]
    fn simplify_removes_dup_and_self_eps() {
        let mut m = Anfa::label("a");
        let f = m.finals()[0];
        m.add_transition(m.start(), Trans::Label("a".into()), f);
        m.add_transition(f, Trans::Eps, f);
        m.simplify_transitions();
        assert_eq!(m.transition_count(), 1);
    }
}
