//! Construction of the ANFA `M_Q` from an `XR` query — the cases (a)–(i) of
//! §4.4.

use xse_rxpath::{Qualifier, XrQuery};

use crate::{Anfa, Annot, BuildError};

impl Anfa {
    /// Build the ANFA representing `q` (cases (a)–(d) for paths, (e)–(i)
    /// for qualifiers).
    ///
    /// # Errors
    /// `position()` qualifiers are accepted only on single label/text steps
    /// (all the paper's constructions need); see [`BuildError`].
    pub fn from_query(q: &XrQuery) -> Result<Anfa, BuildError> {
        Ok(match q {
            // (a) ε
            XrQuery::Empty => Anfa::empty_query(),
            // (b) a label B
            XrQuery::Label(l) => Anfa::label(l.clone()),
            // p/text(): "a special case of Q1/Q2 in which Q2 is represented
            // by an ANFA with a single transition defined by str".
            XrQuery::Text => Anfa::text(),
            XrQuery::DescOrSelf => Anfa::desc_or_self(),
            // (c) union / concatenation / Kleene closure.
            XrQuery::Union(a, b) => Anfa::from_query(a)?.union(&Anfa::from_query(b)?),
            XrQuery::Seq(a, b) => Anfa::from_query(a)?.concat(&Anfa::from_query(b)?),
            XrQuery::Star(p) => Anfa::from_query(p)?.star(),
            // (d) p[q]: annotate the final states of M_p with the qualifier.
            XrQuery::Qualified(p, q) => {
                if let Qualifier::Position(_) = q {
                    if !matches!(**p, XrQuery::Label(_) | XrQuery::Text) {
                        return Err(BuildError::PositionOnComplexPath(p.to_string()));
                    }
                }
                let mut m = Anfa::from_query(p)?;
                let a = annot_of(q)?;
                if let Some(a) = a {
                    m.annotate_finals(&a);
                }
                m
            }
        })
    }
}

/// Cases (e)–(i): translate a qualifier into an annotation. `True` becomes
/// `None` (no gate).
fn annot_of(q: &Qualifier) -> Result<Option<Annot>, BuildError> {
    Ok(Some(match q {
        Qualifier::True => return Ok(None),
        // (e) q is p.
        Qualifier::Path(p) => Annot::Exists(Box::new(Anfa::from_query(p)?)),
        // (f) q is p/text() = c. The stored query includes the text() tail.
        Qualifier::TextEq(p, c) => Annot::ExistsValue(Box::new(Anfa::from_query(p)?), c.clone()),
        // (g) position() = k.
        Qualifier::Position(k) => Annot::Position(*k),
        // (h) ¬q. ¬true is unsatisfiable: gate on the Fail automaton.
        Qualifier::Not(inner) => match annot_of(inner)? {
            None => Annot::Exists(Box::new(Anfa::fail())),
            Some(a) => Annot::Not(Box::new(a)),
        },
        // (i) conjunction / disjunction.
        Qualifier::And(a, b) => match (annot_of(a)?, annot_of(b)?) {
            (None, None) => return Ok(None),
            (Some(x), None) | (None, Some(x)) => x,
            (Some(x), Some(y)) => Annot::And(Box::new(x), Box::new(y)),
        },
        Qualifier::Or(a, b) => match (annot_of(a)?, annot_of(b)?) {
            // true ∨ q ≡ true.
            (None, _) | (_, None) => return Ok(None),
            (Some(x), Some(y)) => Annot::Or(Box::new(x), Box::new(y)),
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_rxpath::parse_query;

    fn build(s: &str) -> Anfa {
        Anfa::from_query(&parse_query(s).unwrap()).unwrap()
    }

    #[test]
    fn label_chain_builds_linear_automaton() {
        let m = build("a/b/c");
        assert_eq!(m.state_count(), 6);
        assert_eq!(m.finals().len(), 1);
    }

    #[test]
    fn union_and_star_build() {
        let m = build("(a | b)*");
        assert!(m.is_final(m.start()));
        assert!(m.state_count() >= 6);
    }

    #[test]
    fn qualifier_annotates_finals() {
        let m = build("a[b/c]");
        let f = m.finals()[0];
        assert!(matches!(m.annot(f), Some(Annot::Exists(_))));
    }

    #[test]
    fn true_qualifier_is_no_gate() {
        let m = build("a[true]");
        let f = m.finals()[0];
        assert!(m.annot(f).is_none());
    }

    #[test]
    fn position_on_label_ok_on_complex_rejected() {
        assert!(Anfa::from_query(&parse_query("a[position() = 2]").unwrap()).is_ok());
        let e = Anfa::from_query(&parse_query("(a/b)[position() = 2]").unwrap()).unwrap_err();
        assert!(matches!(e, BuildError::PositionOnComplexPath(_)));
    }

    #[test]
    fn nested_qualifiers_conjoin() {
        let m = build("a[b][c]");
        let f = m.finals()[0];
        assert!(matches!(m.annot(f), Some(Annot::And(_, _))));
    }

    #[test]
    fn text_eq_and_boolean_annotations() {
        let m = build("a[text() = 'x' and not b or position() = 1]");
        let f = m.finals()[0];
        assert!(matches!(m.annot(f), Some(Annot::Or(_, _))));
    }

    #[test]
    fn example_4_7_automaton_size() {
        // Figure 6's query: the body automaton plus one Exists sub-ANFA.
        let m = build(
            "courses/current/course[basic/cno/text() = 'CS331']/(category/mandatory/regular/required/prereq/course)*",
        );
        assert!(!m.finals().is_empty());
        assert!(m.size() > 20);
    }
}
