//! Direct evaluation of ANFAs on XML trees.
//!
//! The paper notes that ANFAs can be evaluated directly "following the
//! semantics of `XR` query evaluation" (citing the algorithms later
//! published as Fan et al., ICDE 2007). We implement the natural product
//! search: explore reachable `(state, node)` pairs; a pair is admitted only
//! if the state's annotation holds at the node; results are the nodes paired
//! with final states, in document order.

use std::collections::HashSet;

use xse_xmltree::{NodeId, XmlTree};

use crate::{Anfa, Annot, StateId, Trans};

impl Anfa {
    /// Evaluate at context node `ctx` of `tree`; results in document order.
    pub fn eval(&self, tree: &XmlTree, ctx: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let mut seen: HashSet<(StateId, NodeId)> = HashSet::new();
        let mut work: Vec<(StateId, NodeId)> = Vec::new();
        self.admit(tree, self.start, ctx, &mut seen, &mut work);
        let mut hits: HashSet<NodeId> = HashSet::new();
        while let Some((s, n)) = work.pop() {
            if self.is_final(s) {
                hits.insert(n);
            }
            for (t, to) in self.transitions(s) {
                match t {
                    Trans::Eps => self.admit(tree, *to, n, &mut seen, &mut work),
                    Trans::Label(l) => {
                        for c in tree.children_with_tag(n, l) {
                            self.admit(tree, *to, c, &mut seen, &mut work);
                        }
                    }
                    Trans::Text => {
                        for &c in tree.children(n) {
                            if tree.is_text(c) {
                                self.admit(tree, *to, c, &mut seen, &mut work);
                            }
                        }
                    }
                    Trans::Any => {
                        for &c in tree.children(n) {
                            self.admit(tree, *to, c, &mut seen, &mut work);
                        }
                    }
                }
            }
        }
        out.extend(hits);
        // Document order: preorder rank.
        let mut rank = vec![0u32; tree.len()];
        for (i, id) in tree.preorder().enumerate() {
            rank[id.index()] = i as u32;
        }
        out.sort_by_key(|id| rank[id.index()]);
        out
    }

    /// Evaluate at the root.
    pub fn eval_root(&self, tree: &XmlTree) -> Vec<NodeId> {
        self.eval(tree, tree.root())
    }

    /// Push `(s, n)` if new and the state's annotation admits `n`.
    fn admit(
        &self,
        tree: &XmlTree,
        s: StateId,
        n: NodeId,
        seen: &mut HashSet<(StateId, NodeId)>,
        work: &mut Vec<(StateId, NodeId)>,
    ) {
        if seen.contains(&(s, n)) {
            return;
        }
        if let Some(a) = self.annot(s) {
            if !holds(a, tree, n) {
                // Do not mark as seen: annotations are node-dependent but
                // deterministic, so caching the failure would also be sound;
                // we skip the insert to keep `seen` small.
                return;
            }
        }
        seen.insert((s, n));
        work.push((s, n));
    }
}

fn holds(a: &Annot, tree: &XmlTree, n: NodeId) -> bool {
    match a {
        Annot::Exists(m) => !m.eval(tree, n).is_empty(),
        Annot::ExistsValue(m, c) => m
            .eval(tree, n)
            .iter()
            .any(|&id| tree.text_value(id) == Some(c)),
        Annot::Position(k) => tree.position_among_same_label(n) == *k,
        Annot::Not(x) => !holds(x, tree, n),
        Annot::And(x, y) => holds(x, tree, n) && holds(y, tree, n),
        Annot::Or(x, y) => holds(x, tree, n) || holds(y, tree, n),
    }
}

#[cfg(test)]
mod tests {
    use crate::Anfa;
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    /// ANFA evaluation must agree with the direct XR evaluator on queries
    /// whose positions sit on label steps.
    fn agree(xml: &str, queries: &[&str]) {
        let tree = parse_xml(xml).unwrap();
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let direct = parsed.eval(&tree);
            let via_anfa = Anfa::from_query(&parsed).unwrap().eval_root(&tree);
            assert_eq!(direct, via_anfa, "query {q} disagrees");
        }
    }

    #[test]
    fn agrees_with_direct_evaluation_on_school_doc() {
        agree(
            "<db>\
               <class><cno>CS240</cno><type><regular/></type></class>\
               <class><cno>CS331</cno><type><project/></type></class>\
               <class><cno>CS550</cno><type><regular/></type></class>\
             </db>",
            &[
                ".",
                "class",
                "class/cno",
                "class/cno/text()",
                "class[cno/text() = 'CS331']",
                "class[type/regular]/cno",
                "class[position() = 2]",
                "class[not type/project]",
                "class[type/regular and cno/text() = 'CS240']/cno",
                "class | class/cno",
                "class[true]",
            ],
        );
    }

    #[test]
    fn agrees_on_recursive_star_queries() {
        agree(
            "<r><A><B><A><B><A/></B><C/></A></B><C/></A></r>",
            &[
                "A/(B/A)*",
                "(A/B)*",
                "A/(B/A)*/C",
                "A/(B[position() = 1]/A)*",
                ".*",
                "(A | B | C)*",
            ],
        );
    }

    #[test]
    fn agrees_on_descendant_or_self() {
        agree(
            "<r><A><B/><C><B/></C></A></r>",
            &[".//B", "A//B", ".//.", "A//."],
        );
    }

    #[test]
    fn fail_automaton_returns_nothing() {
        let tree = parse_xml("<r><a/></r>").unwrap();
        assert!(Anfa::fail().eval_root(&tree).is_empty());
    }

    #[test]
    fn results_are_doc_ordered_and_deduped() {
        let tree = parse_xml("<r><a/><b/><a/></r>").unwrap();
        let m = Anfa::from_query(&parse_query("a | a | (a | b)").unwrap()).unwrap();
        let r = m.eval_root(&tree);
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn not_true_is_false() {
        let tree = parse_xml("<r><a/></r>").unwrap();
        let m = Anfa::from_query(&parse_query("a[not true]").unwrap()).unwrap();
        assert!(m.eval_root(&tree).is_empty());
        let m = Anfa::from_query(&parse_query("a[not not true]").unwrap()).unwrap();
        assert_eq!(m.eval_root(&tree).len(), 1);
    }
}
