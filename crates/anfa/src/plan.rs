//! Compiled ANFA evaluation plans: tag-id transition tables plus a
//! single-pass, allocation-free product search.
//!
//! [`Anfa::eval`] explores `(state, node)` pairs through pointer-chasing
//! enum transitions, a `HashSet` dedup, and a final preorder-rank sort.
//! [`CompiledAnfa`] lowers the automaton once into flat CSR transition
//! tables — label edges as `(symbol, target)` pairs over an interned
//! symbol table, ε/text/wildcard edges as plain target arrays — and
//! exploits a structural invariant of ANFA construction: every non-ε
//! transition moves strictly parent → child, and ε stays in place. A
//! node's admitted state set therefore depends only on its parent's, so
//! one top-down preorder DFS with per-depth state *bitsets* evaluates the
//! whole automaton: no pair dedup, no rank sort (preorder *is* document
//! order), and with an [`EvalScratch`] pool, no per-node allocation.
//!
//! Symbols are resolved to the tree's [`TagId`]s once per evaluation, so
//! the hot loop compares integers, never strings. Annotation sub-automata
//! compile recursively and share the symbol table; `Exists`-style gates
//! run the same DFS with an early exit on the first hit.

use std::collections::HashMap;
use std::sync::Arc;

use xse_xmltree::{NodeId, TagId, XmlTree};

use crate::{Anfa, Annot, Trans};

/// Sentinel for "state has no annotation" in [`Tables::annot_of`].
const NO_ANNOT: u32 = u32::MAX;

/// An [`Anfa`] lowered to flat transition tables for repeated evaluation.
///
/// Compile once with [`CompiledAnfa::compile`], then evaluate many times
/// with [`eval`](CompiledAnfa::eval) or — to reuse scratch buffers across
/// calls — [`eval_with`](CompiledAnfa::eval_with). Results agree exactly
/// with [`Anfa::eval`] (document order, deduplicated).
#[derive(Clone, Debug)]
pub struct CompiledAnfa {
    /// Interned label alphabet, shared by annotation sub-plans.
    syms: Vec<Arc<str>>,
    /// Maximum `Exists`/`ExistsValue` nesting depth: the number of extra
    /// scratch frames an evaluation may need beyond the top-level one.
    nest: usize,
    tables: Tables,
}

/// CSR transition tables for one automaton (the main plan or an
/// annotation sub-plan). All state ids are local to this table set.
#[derive(Clone, Debug)]
struct Tables {
    start: u32,
    /// Bitset words per state set: `states.div_ceil(64)`.
    words: usize,
    /// Final states as a bitset (`words` entries).
    finals: Vec<u64>,
    /// Per-state spans into `label_edge` (`label_off[s]..label_off[s+1]`).
    label_off: Vec<u32>,
    /// Label edges as (symbol index, target state).
    label_edge: Vec<(u32, u32)>,
    eps_off: Vec<u32>,
    eps_to: Vec<u32>,
    text_off: Vec<u32>,
    text_to: Vec<u32>,
    any_off: Vec<u32>,
    any_to: Vec<u32>,
    /// Per-state index into `annots`, or [`NO_ANNOT`].
    annot_of: Vec<u32>,
    annots: Vec<CompiledAnnot>,
}

/// A compiled state annotation `θ(s)`.
#[derive(Clone, Debug)]
enum CompiledAnnot {
    Exists(Box<Tables>),
    ExistsValue(Box<Tables>, String),
    Position(usize),
    Not(Box<CompiledAnnot>),
    And(Box<CompiledAnnot>, Box<CompiledAnnot>),
    Or(Box<CompiledAnnot>, Box<CompiledAnnot>),
}

/// Reusable evaluation buffers. One scratch serves any number of plans
/// and trees; it only ever grows. Sharing one across the translations of
/// a workload removes every allocation from the eval hot loop.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per-symbol resolution of the plan's alphabet against one tree.
    tag_map: Vec<Option<TagId>>,
    /// One frame per annotation nesting level (frame 0 = main automaton).
    frames: Vec<Frame>,
}

/// Buffers for one DFS: a per-depth bitset arena, the node stack, and
/// the ε-closure worklist.
#[derive(Debug, Default)]
struct Frame {
    /// Depth-indexed state-set arena: depth `d` owns
    /// `arena[d*words..(d+1)*words]`. A subtree rooted at depth `d` only
    /// writes depths `> d`, so an ancestor's set stays intact while its
    /// later children are processed.
    arena: Vec<u64>,
    /// DFS stack of (node, depth); children pushed in reverse for
    /// preorder (= document order) traversal.
    stack: Vec<(NodeId, u32)>,
    /// ε-closure worklist of newly admitted states.
    work: Vec<u32>,
}

impl EvalScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// Label-symbol interner shared across an automaton and its annotation
/// sub-automata, so one per-eval `tag_map` serves every nested plan.
#[derive(Default)]
struct Interner {
    syms: Vec<Arc<str>>,
    map: HashMap<Arc<str>, u32>,
}

impl Interner {
    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&i) = self.map.get(s) {
            return i;
        }
        let i = u32::try_from(self.syms.len()).expect("label alphabet larger than u32::MAX");
        self.syms.push(Arc::clone(s));
        self.map.insert(Arc::clone(s), i);
        i
    }
}

impl CompiledAnfa {
    /// Lower `a` into flat transition tables.
    pub fn compile(a: &Anfa) -> CompiledAnfa {
        let mut interner = Interner::default();
        let mut nest = 0;
        let tables = compile_tables(a, &mut interner, &mut nest, 0);
        CompiledAnfa {
            syms: interner.syms,
            nest,
            tables,
        }
    }

    /// Number of states in the main automaton (annotation sub-plans not
    /// counted).
    pub fn state_count(&self) -> usize {
        self.tables.annot_of.len()
    }

    /// Evaluate at context node `ctx`; results in document order. Agrees
    /// with [`Anfa::eval`] on the source automaton.
    pub fn eval(&self, tree: &XmlTree, ctx: NodeId) -> Vec<NodeId> {
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        self.eval_with(tree, ctx, &mut scratch, &mut out);
        out
    }

    /// Evaluate at the root.
    pub fn eval_root(&self, tree: &XmlTree) -> Vec<NodeId> {
        self.eval(tree, tree.root())
    }

    /// Evaluate at `ctx`, reusing `scratch` across calls and writing the
    /// document-ordered result into `out` (cleared first). This is the
    /// allocation-free hot path: after warmup neither the scratch nor the
    /// output reallocates.
    pub fn eval_with(
        &self,
        tree: &XmlTree,
        ctx: NodeId,
        scratch: &mut EvalScratch,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        scratch.tag_map.clear();
        scratch
            .tag_map
            .extend(self.syms.iter().map(|s| tree.tag_id(s)));
        if scratch.frames.len() < self.nest + 1 {
            scratch.frames.resize_with(self.nest + 1, Frame::default);
        }
        self.tables
            .run(tree, ctx, &scratch.tag_map, &mut scratch.frames, &mut |n| {
                out.push(n);
                false
            });
    }
}

/// Lower one automaton; `level` is its annotation nesting depth.
fn compile_tables(a: &Anfa, interner: &mut Interner, nest: &mut usize, level: usize) -> Tables {
    let n = a.state_count();
    let words = n.div_ceil(64).max(1);
    let mut t = Tables {
        start: a.start().index() as u32,
        words,
        finals: vec![0u64; words],
        label_off: Vec::with_capacity(n + 1),
        label_edge: Vec::new(),
        eps_off: Vec::with_capacity(n + 1),
        eps_to: Vec::new(),
        text_off: Vec::with_capacity(n + 1),
        text_to: Vec::new(),
        any_off: Vec::with_capacity(n + 1),
        any_to: Vec::new(),
        annot_of: Vec::with_capacity(n),
        annots: Vec::new(),
    };
    for i in 0..n {
        let s = crate::StateId::from_index(i);
        t.label_off.push(t.label_edge.len() as u32);
        t.eps_off.push(t.eps_to.len() as u32);
        t.text_off.push(t.text_to.len() as u32);
        t.any_off.push(t.any_to.len() as u32);
        for (tr, to) in a.transitions(s) {
            let to = to.index() as u32;
            match tr {
                Trans::Eps => t.eps_to.push(to),
                Trans::Label(l) => t.label_edge.push((interner.intern(l), to)),
                Trans::Text => t.text_to.push(to),
                Trans::Any => t.any_to.push(to),
            }
        }
        if a.is_final(s) {
            t.finals[i / 64] |= 1u64 << (i % 64);
        }
        match a.annot(s) {
            None => t.annot_of.push(NO_ANNOT),
            Some(an) => {
                t.annot_of.push(t.annots.len() as u32);
                let ca = compile_annot(an, interner, nest, level);
                t.annots.push(ca);
            }
        }
    }
    t.label_off.push(t.label_edge.len() as u32);
    t.eps_off.push(t.eps_to.len() as u32);
    t.text_off.push(t.text_to.len() as u32);
    t.any_off.push(t.any_to.len() as u32);
    t
}

fn compile_annot(
    a: &Annot,
    interner: &mut Interner,
    nest: &mut usize,
    level: usize,
) -> CompiledAnnot {
    match a {
        Annot::Exists(m) => {
            *nest = (*nest).max(level + 1);
            CompiledAnnot::Exists(Box::new(compile_tables(m, interner, nest, level + 1)))
        }
        Annot::ExistsValue(m, c) => {
            *nest = (*nest).max(level + 1);
            CompiledAnnot::ExistsValue(
                Box::new(compile_tables(m, interner, nest, level + 1)),
                c.clone(),
            )
        }
        Annot::Position(k) => CompiledAnnot::Position(*k),
        Annot::Not(x) => CompiledAnnot::Not(Box::new(compile_annot(x, interner, nest, level))),
        Annot::And(x, y) => CompiledAnnot::And(
            Box::new(compile_annot(x, interner, nest, level)),
            Box::new(compile_annot(y, interner, nest, level)),
        ),
        Annot::Or(x, y) => CompiledAnnot::Or(
            Box::new(compile_annot(x, interner, nest, level)),
            Box::new(compile_annot(y, interner, nest, level)),
        ),
    }
}

impl Tables {
    /// Preorder product search from `ctx`. Calls `on_hit` for every node
    /// that admits a final state, in document order; stops and returns
    /// `true` as soon as `on_hit` does.
    fn run(
        &self,
        tree: &XmlTree,
        ctx: NodeId,
        tag_map: &[Option<TagId>],
        frames: &mut [Frame],
        on_hit: &mut dyn FnMut(NodeId) -> bool,
    ) -> bool {
        let (frame, rest) = frames
            .split_first_mut()
            .expect("EvalScratch frame pool exhausted");
        let words = self.words;
        frame.stack.clear();
        frame.work.clear();
        if frame.arena.len() < words {
            frame.arena.resize(words, 0);
        }

        // Depth 0: admit the start state at the context node, ε-close.
        {
            let set = &mut frame.arena[..words];
            set.fill(0);
            self.admit(self.start, ctx, tree, tag_map, set, &mut frame.work, rest);
            self.close(ctx, tree, tag_map, set, &mut frame.work, rest);
            if self.intersects_finals(set) && on_hit(ctx) {
                return true;
            }
            if set.iter().any(|&w| w != 0) {
                for &c in tree.children(ctx).iter().rev() {
                    frame.stack.push((c, 1));
                }
            }
        }

        while let Some((n, d)) = frame.stack.pop() {
            let d = d as usize;
            if frame.arena.len() < (d + 1) * words {
                frame.arena.resize((d + 1) * words, 0);
            }
            let (lo, hi) = frame.arena.split_at_mut(d * words);
            let parent = &lo[(d - 1) * words..];
            let set = &mut hi[..words];
            set.fill(0);

            // Candidates: the parent's admitted states' child-moving edges.
            let child_tag = tree.node_tag_id(n);
            for (w, &pw) in parent.iter().enumerate() {
                let mut bits = pw;
                while bits != 0 {
                    let s = (w * 64 + bits.trailing_zeros() as usize) as u32;
                    bits &= bits - 1;
                    let si = s as usize;
                    match child_tag {
                        Some(t) => {
                            let span = self.label_off[si] as usize..self.label_off[si + 1] as usize;
                            for &(sym, to) in &self.label_edge[span] {
                                if tag_map[sym as usize] == Some(t) {
                                    self.admit(to, n, tree, tag_map, set, &mut frame.work, rest);
                                }
                            }
                        }
                        None => {
                            let span = self.text_off[si] as usize..self.text_off[si + 1] as usize;
                            for &to in &self.text_to[span] {
                                self.admit(to, n, tree, tag_map, set, &mut frame.work, rest);
                            }
                        }
                    }
                    let span = self.any_off[si] as usize..self.any_off[si + 1] as usize;
                    for &to in &self.any_to[span] {
                        self.admit(to, n, tree, tag_map, set, &mut frame.work, rest);
                    }
                }
            }
            self.close(n, tree, tag_map, set, &mut frame.work, rest);

            if self.intersects_finals(set) && on_hit(n) {
                return true;
            }
            if set.iter().any(|&w| w != 0) {
                for &c in tree.children(n).iter().rev() {
                    frame.stack.push((c, (d + 1) as u32));
                }
            }
        }
        false
    }

    fn intersects_finals(&self, set: &[u64]) -> bool {
        set.iter().zip(&self.finals).any(|(&a, &b)| a & b != 0)
    }

    /// Admit state `s` at node `n` if new and its annotation holds;
    /// newly admitted states join the ε-closure worklist.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        s: u32,
        n: NodeId,
        tree: &XmlTree,
        tag_map: &[Option<TagId>],
        set: &mut [u64],
        work: &mut Vec<u32>,
        rest: &mut [Frame],
    ) {
        let (w, b) = (s as usize / 64, s as usize % 64);
        if set[w] & (1u64 << b) != 0 {
            return;
        }
        let ai = self.annot_of[s as usize];
        if ai != NO_ANNOT && !self.annots[ai as usize].holds(tree, n, tag_map, rest) {
            // Annotations are deterministic per node, so not caching the
            // failure is sound (mirrors `Anfa::eval`'s admit).
            return;
        }
        set[w] |= 1u64 << b;
        work.push(s);
    }

    /// Drain the worklist through ε-edges (which stay at `n`).
    fn close(
        &self,
        n: NodeId,
        tree: &XmlTree,
        tag_map: &[Option<TagId>],
        set: &mut [u64],
        work: &mut Vec<u32>,
        rest: &mut [Frame],
    ) {
        while let Some(s) = work.pop() {
            let si = s as usize;
            let span = self.eps_off[si] as usize..self.eps_off[si + 1] as usize;
            for i in span {
                self.admit(self.eps_to[i], n, tree, tag_map, set, work, rest);
            }
        }
    }
}

impl CompiledAnnot {
    fn holds(
        &self,
        tree: &XmlTree,
        n: NodeId,
        tag_map: &[Option<TagId>],
        frames: &mut [Frame],
    ) -> bool {
        match self {
            CompiledAnnot::Exists(t) => t.run(tree, n, tag_map, frames, &mut |_| true),
            CompiledAnnot::ExistsValue(t, c) => t.run(tree, n, tag_map, frames, &mut |id| {
                tree.text_value(id) == Some(c.as_str())
            }),
            CompiledAnnot::Position(k) => tree.position_among_same_label(n) == *k,
            CompiledAnnot::Not(x) => !x.holds(tree, n, tag_map, frames),
            CompiledAnnot::And(x, y) => {
                x.holds(tree, n, tag_map, frames) && y.holds(tree, n, tag_map, frames)
            }
            CompiledAnnot::Or(x, y) => {
                x.holds(tree, n, tag_map, frames) || y.holds(tree, n, tag_map, frames)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{CompiledAnfa, EvalScratch};
    use crate::Anfa;
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    /// The compiled plan must agree exactly with interpreted ANFA eval
    /// (which itself agrees with the direct XR evaluator).
    fn agree(xml: &str, queries: &[&str]) {
        let tree = parse_xml(xml).unwrap();
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let anfa = Anfa::from_query(&parsed).unwrap();
            let direct = anfa.eval_root(&tree);
            let plan = CompiledAnfa::compile(&anfa);
            assert_eq!(plan.eval_root(&tree), direct, "query {q} disagrees");
            // Scratch-pooled path must match too (shared across queries).
            plan.eval_with(&tree, tree.root(), &mut scratch, &mut out);
            assert_eq!(out, direct, "query {q} disagrees via eval_with");
        }
    }

    #[test]
    fn agrees_with_anfa_eval_on_school_doc() {
        agree(
            "<db>\
               <class><cno>CS240</cno><type><regular/></type></class>\
               <class><cno>CS331</cno><type><project/></type></class>\
               <class><cno>CS550</cno><type><regular/></type></class>\
             </db>",
            &[
                ".",
                "class",
                "class/cno",
                "class/cno/text()",
                "class[cno/text() = 'CS331']",
                "class[type/regular]/cno",
                "class[position() = 2]",
                "class[not type/project]",
                "class[type/regular and cno/text() = 'CS240']/cno",
                "class | class/cno",
                "class[true]",
                "class[cno[position() = 1]]",
            ],
        );
    }

    #[test]
    fn agrees_on_recursive_star_queries() {
        agree(
            "<r><A><B><A><B><A/></B><C/></A></B><C/></A></r>",
            &[
                "A/(B/A)*",
                "(A/B)*",
                "A/(B/A)*/C",
                "A/(B[position() = 1]/A)*",
                ".*",
                "(A | B | C)*",
            ],
        );
    }

    #[test]
    fn agrees_on_descendant_or_self() {
        agree(
            "<r><A><B/><C><B/></C></A></r>",
            &[".//B", "A//B", ".//.", "A//.", ".//B[position() = 1]"],
        );
    }

    #[test]
    fn agrees_on_nested_qualifiers() {
        agree(
            "<r><a><b><c>x</c></b></a><a><b><c>y</c></b></a></r>",
            &[
                "a[b[c/text() = 'y']]",
                "a[b[c]]/b/c/text()",
                "a[not b[c/text() = 'x']]",
            ],
        );
    }

    #[test]
    fn fail_plan_returns_nothing() {
        let tree = parse_xml("<r><a/></r>").unwrap();
        assert!(CompiledAnfa::compile(&Anfa::fail())
            .eval_root(&tree)
            .is_empty());
    }

    #[test]
    fn results_are_doc_ordered_and_deduped() {
        let tree = parse_xml("<r><a/><b/><a/></r>").unwrap();
        let anfa = Anfa::from_query(&parse_query("a | a | (a | b)").unwrap()).unwrap();
        let r = CompiledAnfa::compile(&anfa).eval_root(&tree);
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scratch_reuse_across_trees_and_plans() {
        let t1 = parse_xml("<r><a><b/></a></r>").unwrap();
        let t2 = parse_xml("<q><x><a/></x><a/></q>").unwrap();
        let p1 = CompiledAnfa::compile(&Anfa::from_query(&parse_query("a/b").unwrap()).unwrap());
        let p2 = CompiledAnfa::compile(&Anfa::from_query(&parse_query(".//a").unwrap()).unwrap());
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            p1.eval_with(&t1, t1.root(), &mut scratch, &mut out);
            assert_eq!(out.len(), 1);
            p2.eval_with(&t2, t2.root(), &mut scratch, &mut out);
            assert_eq!(out.len(), 2);
            p2.eval_with(&t1, t1.root(), &mut scratch, &mut out);
            assert_eq!(out.len(), 1);
        }
    }
}
