//! State elimination: converting an ANFA back to an explicit `XR` query.
//!
//! §4.4 observes this translation "subsumes the translation of finite-state
//! automata to regular expressions, an EXPTIME-complete problem" — so this
//! is strictly a debugging/presentation facility (and a differential-testing
//! oracle: the extracted query must evaluate like the automaton). The
//! algorithm is classic GNFA elimination with `XR` expressions as edge
//! weights; state annotations are folded into qualifiers on their incoming
//! edges first.

use std::collections::BTreeMap;

use xse_rxpath::{Qualifier, XrQuery};

use crate::{Anfa, Annot, Trans};

impl Anfa {
    /// Extract an equivalent `XR` query. Returns `None` for the `Fail`
    /// automaton (no query of the grammar denotes the constant-empty
    /// result on every tree... other than ones with fresh labels; callers
    /// treat `None` as "empty result").
    pub fn to_query(&self) -> Option<XrQuery> {
        let mut m = self.clone();
        m.prune();
        if m.is_fail() {
            return None;
        }

        // GNFA edges: (from, to) -> XrQuery weight. Node usize::MAX-1 is the
        // fresh start, usize::MAX the fresh final.
        const S: usize = usize::MAX - 1;
        const F: usize = usize::MAX;
        let mut edges: BTreeMap<(usize, usize), XrQuery> = BTreeMap::new();
        let add =
            |edges: &mut BTreeMap<(usize, usize), XrQuery>, from: usize, to: usize, q: XrQuery| {
                edges
                    .entry((from, to))
                    .and_modify(|e| *e = e.clone().or(q.clone()))
                    .or_insert(q);
            };

        for (i, st) in m.states.iter().enumerate() {
            for (t, to) in &st.transitions {
                let mut q = match t {
                    Trans::Eps => XrQuery::Empty,
                    Trans::Label(l) => XrQuery::Label(l.clone()),
                    Trans::Text => XrQuery::Text,
                    Trans::Any => XrQuery::DescOrSelf, // over-approximation of one any-step
                };
                // Fold the *target* state's annotation into the edge.
                if let Some(a) = m.states[to.index()].annot.as_ref() {
                    q = q.with(annot_to_qualifier(a)?);
                }
                add(&mut edges, i, to.index(), q);
            }
            if st.is_final {
                add(&mut edges, i, F, XrQuery::Empty);
            }
        }
        {
            let mut q0 = XrQuery::Empty;
            if let Some(a) = m.states[m.start.index()].annot.as_ref() {
                q0 = q0.with(annot_to_qualifier(a)?);
            }
            add(&mut edges, S, m.start.index(), q0);
        }

        // Eliminate internal states, cheapest (in-degree × out-degree) first.
        let mut remaining: Vec<usize> = (0..m.states.len()).collect();
        while !remaining.is_empty() {
            let (idx, &x) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &x)| {
                    let indeg = edges.keys().filter(|(_, t)| *t == x).count();
                    let outdeg = edges.keys().filter(|(f, _)| *f == x).count();
                    indeg * outdeg
                })
                .unwrap();
            remaining.swap_remove(idx);

            let self_loop = edges.remove(&(x, x));
            let ins: Vec<(usize, XrQuery)> = edges
                .iter()
                .filter(|((_, t), _)| *t == x)
                .map(|((f, _), q)| (*f, q.clone()))
                .collect();
            let outs: Vec<(usize, XrQuery)> = edges
                .iter()
                .filter(|((f, _), _)| *f == x)
                .map(|((_, t), q)| (*t, q.clone()))
                .collect();
            edges.retain(|(f, t), _| *f != x && *t != x);
            for (from, p) in &ins {
                for (to, s) in &outs {
                    let mut q = p.clone();
                    if let Some(l) = &self_loop {
                        q = q.then(l.clone().star());
                    }
                    q = q.then(s.clone());
                    add(&mut edges, *from, *to, q);
                }
            }
        }
        edges.remove(&(S, F))
    }
}

/// Render an annotation as an `XR` qualifier. `None` (propagated as `?`)
/// when a sub-automaton is `Fail` *under a `Not`* — handled by the caller
/// via the `Exists(Fail)`-style encodings below, so the only true failure
/// mode is an unconvertible nested automaton, which cannot happen (recursion
/// bottoms out at `Position`).
fn annot_to_qualifier(a: &Annot) -> Option<Qualifier> {
    Some(match a {
        Annot::Exists(m) => match m.to_query() {
            Some(q) => Qualifier::Path(Box::new(q)),
            // Exists(Fail) ≡ false ≡ ¬true.
            None => Qualifier::Not(Box::new(Qualifier::True)),
        },
        Annot::ExistsValue(m, c) => match m.to_query() {
            Some(q) => Qualifier::TextEq(Box::new(q), c.clone()),
            None => Qualifier::Not(Box::new(Qualifier::True)),
        },
        Annot::Position(k) => Qualifier::Position(*k),
        Annot::Not(x) => Qualifier::Not(Box::new(annot_to_qualifier(x)?)),
        Annot::And(x, y) => Qualifier::And(
            Box::new(annot_to_qualifier(x)?),
            Box::new(annot_to_qualifier(y)?),
        ),
        Annot::Or(x, y) => Qualifier::Or(
            Box::new(annot_to_qualifier(x)?),
            Box::new(annot_to_qualifier(y)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use crate::Anfa;
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    /// Roundtrip: query → ANFA → query, compare evaluation results.
    fn roundtrip_agrees(xml: &str, queries: &[&str]) {
        let tree = parse_xml(xml).unwrap();
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let m = Anfa::from_query(&parsed).unwrap();
            let extracted = m
                .to_query()
                .unwrap_or_else(|| panic!("{q} extracted as Fail"));
            let direct = parsed.eval(&tree);
            let via_extracted = extracted.eval(&tree);
            assert_eq!(
                direct, via_extracted,
                "query {q} reprinted as {extracted} disagrees"
            );
        }
    }

    #[test]
    fn roundtrips_path_queries() {
        roundtrip_agrees(
            "<db>\
               <class><cno>CS240</cno><type><regular/></type></class>\
               <class><cno>CS331</cno><type><project/></type></class>\
             </db>",
            &[
                "class",
                "class/cno/text()",
                "class[cno/text() = 'CS331']",
                "class[type/regular]/cno",
                "class[position() = 2]",
                "class | class/cno",
            ],
        );
    }

    #[test]
    fn roundtrips_star_queries() {
        roundtrip_agrees(
            "<r><A><B><A><B><A/></B><C/></A></B><C/></A></r>",
            &["A/(B/A)*", "(A/B)*", "A/(B/A)*/C", "(A | B | C)*"],
        );
    }

    #[test]
    fn fail_extracts_to_none() {
        assert!(Anfa::fail().to_query().is_none());
    }

    #[test]
    fn extraction_of_single_label_is_small() {
        let m = Anfa::from_query(&parse_query("a/b").unwrap()).unwrap();
        let q = m.to_query().unwrap();
        // ε-padding may remain but evaluation already checked; size sanity:
        assert!(q.size() <= 8, "got {q} of size {}", q.size());
    }
}
