use std::fmt;
use std::sync::Arc;

/// State index within one [`Anfa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from an index.
    pub fn from_index(i: usize) -> Self {
        StateId(u32::try_from(i).expect("ANFA larger than u32::MAX states"))
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Transition alphabet: ε, an element label, the `str` (text) symbol, or the
/// wildcard used to evaluate the fragment-`X` `//` axis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trans {
    /// ε-transition (no tree movement).
    Eps,
    /// Move to a child element with this tag.
    Label(Arc<str>),
    /// Move to a text child (the paper's `str` transition).
    Text,
    /// Move to any child (element or text). Not produced by `XR`
    /// constructions; used for `//`.
    Any,
}

/// A state annotation `θ(s)` — the qualifier gating passage through a state.
/// Sub-queries (`ν` entries) are owned inline.
#[derive(Clone, Debug)]
pub enum Annot {
    /// `X` — the sub-automaton has a nonempty result at the node.
    Exists(Box<Anfa>),
    /// `X/text() = 'c'` — some text node reached by the sub-automaton
    /// carries `c` (the sub-automaton includes the text transition).
    ExistsValue(Box<Anfa>, String),
    /// `position() = k` — the node is the k-th among its same-label
    /// siblings.
    Position(usize),
    /// `¬q`.
    Not(Box<Annot>),
    /// `q1 ∧ q2`.
    And(Box<Annot>, Box<Annot>),
    /// `q1 ∨ q2`.
    Or(Box<Annot>, Box<Annot>),
}

/// Error from [`Anfa::from_query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A `position()` qualifier was attached to a path that is not a single
    /// label/text step; its automaton semantics would diverge from `XR`
    /// (DESIGN.md §3).
    PositionOnComplexPath(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::PositionOnComplexPath(p) => write!(
                f,
                "position() qualifier on non-step path {p:?} is not supported in automaton form"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Clone, Debug, Default)]
pub(crate) struct State {
    pub(crate) transitions: Vec<(Trans, StateId)>,
    pub(crate) is_final: bool,
    pub(crate) annot: Option<Annot>,
}

/// An annotated NFA. See the crate docs for the relation to the paper's
/// `(M, ν)` pair.
#[derive(Clone, Debug)]
pub struct Anfa {
    pub(crate) states: Vec<State>,
    pub(crate) start: StateId,
}

impl Anfa {
    /// An automaton with a single (non-final) start state and nothing else.
    pub fn new() -> Self {
        Anfa {
            states: vec![State::default()],
            start: StateId(0),
        }
    }

    /// The `Fail` automaton: one start state, no transitions, no finals.
    pub fn fail() -> Self {
        Anfa::new()
    }

    /// Case (a): the ε query — start state is final.
    pub fn empty_query() -> Self {
        let mut a = Anfa::new();
        a.set_final(a.start, true);
        a
    }

    /// Case (b): a single label step.
    pub fn label(l: impl Into<Arc<str>>) -> Self {
        let mut a = Anfa::new();
        let f = a.add_state();
        a.add_transition(a.start, Trans::Label(l.into()), f);
        a.set_final(f, true);
        a
    }

    /// A single `text()` step.
    pub fn text() -> Self {
        let mut a = Anfa::new();
        let f = a.add_state();
        a.add_transition(a.start, Trans::Text, f);
        a.set_final(f, true);
        a
    }

    /// The descendant-or-self automaton (wildcard self-loop).
    pub fn desc_or_self() -> Self {
        let mut a = Anfa::new();
        a.set_final(a.start, true);
        a.add_transition(a.start, Trans::Any, a.start);
        a
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// Total size including sub-automata in annotations — the `|Tr(Q)|`
    /// measured against Theorem 4.3(b)'s bound.
    pub fn size(&self) -> usize {
        let mut n = self.states.len() + self.transition_count();
        for s in &self.states {
            if let Some(a) = &s.annot {
                n += annot_size(a);
            }
        }
        n
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.states.len());
        self.states.push(State::default());
        id
    }

    /// Add a transition.
    pub fn add_transition(&mut self, from: StateId, t: Trans, to: StateId) {
        self.states[from.index()].transitions.push((t, to));
    }

    /// Mark or unmark a final state.
    pub fn set_final(&mut self, s: StateId, f: bool) {
        self.states[s.index()].is_final = f;
    }

    /// Is `s` final?
    pub fn is_final(&self, s: StateId) -> bool {
        self.states[s.index()].is_final
    }

    /// All final states.
    pub fn finals(&self) -> Vec<StateId> {
        (0..self.states.len())
            .map(StateId::from_index)
            .filter(|&s| self.states[s.index()].is_final)
            .collect()
    }

    /// The annotation of `s`, if any.
    pub fn annot(&self, s: StateId) -> Option<&Annot> {
        self.states[s.index()].annot.as_ref()
    }

    /// Attach an annotation to `s`, conjoining with an existing one.
    pub fn annotate(&mut self, s: StateId, a: Annot) {
        let slot = &mut self.states[s.index()].annot;
        *slot = Some(match slot.take() {
            None => a,
            Some(old) => Annot::And(Box::new(old), Box::new(a)),
        });
    }

    /// Annotate every final state (the paper's case (d) for `p[q]`).
    pub fn annotate_finals(&mut self, a: &Annot) {
        for s in self.finals() {
            self.annotate(s, a.clone());
        }
    }

    /// Copy all states of `other` into `self`, returning the offset to add
    /// to `other`'s state ids. Final flags and annotations are preserved;
    /// the caller wires up the imports.
    pub fn import(&mut self, other: &Anfa) -> u32 {
        let offset = self.states.len() as u32;
        for st in &other.states {
            let mut ns = st.clone();
            for (_, to) in &mut ns.transitions {
                to.0 += offset;
            }
            self.states.push(ns);
        }
        offset
    }

    /// `self ∪ other`: fresh start with ε to both.
    pub fn union(&self, other: &Anfa) -> Anfa {
        let mut out = Anfa::new();
        let o1 = out.import(self);
        let o2 = out.import(other);
        out.add_transition(out.start, Trans::Eps, StateId(self.start.0 + o1));
        out.add_transition(out.start, Trans::Eps, StateId(other.start.0 + o2));
        out
    }

    /// `self / other`: ε from `self`'s finals to `other`'s start; `self`'s
    /// finals are cleared (their annotations keep gating passage).
    pub fn concat(&self, other: &Anfa) -> Anfa {
        let mut out = self.clone();
        let o2 = out.import(other);
        let other_start = StateId(other.start.0 + o2);
        for f in self.finals() {
            out.set_final(f, false);
            out.add_transition(f, Trans::Eps, other_start);
        }
        // `import` copied `other`'s final flags — they are the new finals.
        out
    }

    /// `self*`: fresh start/final hub with ε-cycles through the body.
    pub fn star(&self) -> Anfa {
        let mut out = Anfa::new();
        let o = out.import(self);
        let hub = out.start;
        out.set_final(hub, true);
        out.add_transition(hub, Trans::Eps, StateId(self.start.0 + o));
        for f in self.finals() {
            let f = StateId(f.0 + o);
            out.set_final(f, false);
            out.add_transition(f, Trans::Eps, hub);
        }
        out
    }

    /// Iterate transitions of a state.
    pub fn transitions(&self, s: StateId) -> &[(Trans, StateId)] {
        &self.states[s.index()].transitions
    }
}

impl Default for Anfa {
    fn default() -> Self {
        Anfa::new()
    }
}

fn annot_size(a: &Annot) -> usize {
    match a {
        Annot::Exists(m) => 1 + m.size(),
        Annot::ExistsValue(m, _) => 1 + m.size(),
        Annot::Position(_) => 1,
        Annot::Not(x) => 1 + annot_size(x),
        Annot::And(x, y) | Annot::Or(x, y) => 1 + annot_size(x) + annot_size(y),
    }
}

impl fmt::Display for Anfa {
    /// A diagnostic dump: one line per state.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, st) in self.states.iter().enumerate() {
            let id = StateId::from_index(i);
            write!(
                f,
                "{}{}{:?}",
                if id == self.start { ">" } else { " " },
                if st.is_final { "*" } else { " " },
                id
            )?;
            if st.annot.is_some() {
                write!(f, " [θ]")?;
            }
            for (t, to) in &st.transitions {
                match t {
                    Trans::Eps => write!(f, " --ε--> {to:?}")?,
                    Trans::Label(l) => write!(f, " --{l}--> {to:?}")?,
                    Trans::Text => write!(f, " --str--> {to:?}")?,
                    Trans::Any => write!(f, " --any--> {to:?}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_automata_shapes() {
        let e = Anfa::empty_query();
        assert_eq!(e.state_count(), 1);
        assert!(e.is_final(e.start()));

        let l = Anfa::label("A");
        assert_eq!(l.state_count(), 2);
        assert_eq!(l.finals().len(), 1);
        assert!(!l.is_final(l.start()));

        let f = Anfa::fail();
        assert!(f.finals().is_empty());

        let t = Anfa::text();
        assert!(matches!(t.transitions(t.start())[0].0, Trans::Text));
    }

    #[test]
    fn union_concat_star_counts() {
        let a = Anfa::label("A");
        let b = Anfa::label("B");
        let u = a.union(&b);
        assert_eq!(u.state_count(), 5);
        assert_eq!(u.finals().len(), 2);

        let c = a.concat(&b);
        assert_eq!(c.state_count(), 4);
        assert_eq!(c.finals().len(), 1);
        // a's old final is no longer final.
        assert!(!c.is_final(StateId(1)));

        let s = a.star();
        assert_eq!(s.finals().len(), 1);
        assert!(s.is_final(s.start()));
    }

    #[test]
    fn annotate_conjoins() {
        let mut a = Anfa::label("A");
        let f = a.finals()[0];
        a.annotate(f, Annot::Position(1));
        a.annotate(f, Annot::Position(2));
        assert!(matches!(a.annot(f), Some(Annot::And(_, _))));
    }

    #[test]
    fn size_includes_sub_automata() {
        let mut a = Anfa::label("A");
        let base = a.size();
        let f = a.finals()[0];
        a.annotate(f, Annot::Exists(Box::new(Anfa::label("B"))));
        assert!(a.size() > base + Anfa::label("B").size() - 1);
    }

    #[test]
    fn import_offsets_targets() {
        let mut a = Anfa::label("A");
        let b = Anfa::label("B");
        let off = a.import(&b);
        assert_eq!(off, 2);
        // b's transition must point at offset ids.
        let (_, to) = &a.transitions(StateId(off))[0];
        assert_eq!(*to, StateId(off + 1));
    }

    #[test]
    fn display_dump_mentions_all_states() {
        let a = Anfa::label("A").union(&Anfa::text());
        let dump = a.to_string();
        assert_eq!(dump.lines().count(), a.state_count());
        assert!(dump.contains("--A-->"));
        assert!(dump.contains("--str-->"));
    }
}
