//! Annotated nondeterministic finite automata (ANFA) — §4.4 of
//! Fan & Bohannon.
//!
//! An ANFA `M_Q = (M, ν)` represents a regular XPath query: `M` is an NFA
//! over element labels extended with a partial mapping `θ` from states to
//! qualifiers, and `ν` maps qualifier names to the sub-ANFAs implementing
//! them. Keeping translated queries in automaton form is what makes the
//! paper's query translation run in low polynomial time — explicit `XR`
//! output is worst-case exponential (it subsumes NFA → regular-expression
//! conversion, EXPTIME-complete per Ehrenfeucht & Zeiger).
//!
//! Representation notes:
//!
//! * the name table `ν` is implicit: a state's annotation owns its
//!   sub-automata directly ([`Annot`]);
//! * a state's annotation gates *passage*: a run may occupy state `s` at
//!   node `n` only if `θ(s)` holds at `n` — this subsumes the paper's
//!   "annotate the final states of `p` with `[q]`" for `p[q]`, and keeps
//!   working when those states later get outgoing ε-edges during
//!   concatenation;
//! * `position() = k` annotations are only attached to states entered by a
//!   single label/text transition (which is all the paper's constructions
//!   produce); there they coincide with "k-th same-label sibling", the
//!   semantics [`Anfa::eval`] implements. [`build`](Anfa::from_query)
//!   rejects position qualifiers on other path shapes rather than silently
//!   mistranslating them (see DESIGN.md §3).
//!
//! The [`Fail`](Anfa::fail) automaton, useless-state removal
//! ([`Anfa::prune`]) and the state-elimination translation back to `XR`
//! ([`Anfa::to_query`]) complete the toolkit.

mod automaton;
mod build;
mod eval;
mod plan;
mod prune;
mod to_xr;

pub use automaton::{Anfa, Annot, BuildError, StateId, Trans};
pub use plan::{CompiledAnfa, EvalScratch};
