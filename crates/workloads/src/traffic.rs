//! Traffic-mix sampling for the embedding service.
//!
//! The realistic serving workload ("Ensuring Query Compatibility with
//! Evolving XML Schemas": many clients repeatedly translating queries
//! against a small population of schema pairs) is a *mix* of operations,
//! not a single op in a loop. A [`TrafficMix`] is a weighted distribution
//! over the service's operations; the load generator samples it per request
//! with a seeded RNG, so a mix name + seed fully determines the replayed
//! traffic.

use rand::rngs::StdRng;
use rand::Rng;

/// One service operation kind, as sampled by a [`TrafficMix`].
///
/// These mirror the wire opcodes of `xse-service` but live here so workload
/// definitions don't depend on the serving crate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ServiceOp {
    /// Ensure the pair's embedding is compiled/cached (a warm-up touch).
    Compile,
    /// Map a source document to the target schema (`σd`).
    Apply,
    /// Recover a source document from a target one (`σd⁻¹`).
    Invert,
    /// Translate a source query to the target schema (`Tr`).
    Translate,
    /// Fetch registry statistics.
    Stats,
    /// Evict the pair's embedding from the registry.
    Evict,
}

impl ServiceOp {
    /// All operation kinds, in the fixed order used by [`TrafficMix`]
    /// weights.
    pub const ALL: [ServiceOp; 6] = [
        ServiceOp::Compile,
        ServiceOp::Apply,
        ServiceOp::Invert,
        ServiceOp::Translate,
        ServiceOp::Stats,
        ServiceOp::Evict,
    ];

    /// Stable lowercase name (summary/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            ServiceOp::Compile => "compile",
            ServiceOp::Apply => "apply",
            ServiceOp::Invert => "invert",
            ServiceOp::Translate => "translate",
            ServiceOp::Stats => "stats",
            ServiceOp::Evict => "evict",
        }
    }
}

/// A weighted distribution over [`ServiceOp`]s.
///
/// Weights are integers (per-mille style, though only ratios matter); a
/// zero weight disables the op. The named constructors are the mixes the
/// ROADMAP calls for; [`TrafficMix::by_name`] resolves the CLI spelling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficMix {
    name: &'static str,
    /// Indexed by [`ServiceOp::ALL`] order.
    weights: [u32; 6],
    /// Skew query choice within a pair toward its first queries
    /// (harmonic weights, Zipf-style) instead of picking uniformly.
    zipf_queries: bool,
}

impl TrafficMix {
    /// Query-translation dominated: the schema-evolution serving workload.
    pub fn translate_heavy() -> Self {
        TrafficMix {
            name: "translate-heavy",
            //        comp  appl  invr  trns  stat  evct
            weights: [0, 80, 40, 840, 40, 0],
            zipf_queries: false,
        }
    }

    /// Like [`TrafficMix::translate_heavy`] but with Zipf-skewed query
    /// reuse: within each pair the i-th query is chosen with probability
    /// ∝ 1/(i+1), modelling the few hot queries a translation tier
    /// actually fields. Almost every translate should land on a cached
    /// `TranslatePlan` — this is the mix the warm-plan latency and
    /// plan-hit-rate numbers are recorded on.
    pub fn repeated_query() -> Self {
        TrafficMix {
            name: "repeated-query",
            //        comp  appl  invr  trns  stat  evct
            weights: [0, 20, 10, 940, 30, 0],
            zipf_queries: true,
        }
    }

    /// Document-migration dominated: bulk `σd` with some inversions.
    pub fn apply_heavy() -> Self {
        TrafficMix {
            name: "apply-heavy",
            weights: [0, 700, 180, 80, 40, 0],
            zipf_queries: false,
        }
    }

    /// Every data-path op roughly equally represented.
    pub fn mixed() -> Self {
        TrafficMix {
            name: "mixed",
            weights: [60, 280, 280, 280, 60, 40],
            zipf_queries: false,
        }
    }

    /// Adversarial for the registry: evictions are a first-class part of
    /// the traffic, so the cache keeps losing entries it just compiled.
    pub fn cold_cache_adversarial() -> Self {
        TrafficMix {
            name: "cold-cache-adversarial",
            weights: [100, 150, 100, 300, 50, 300],
            zipf_queries: false,
        }
    }

    /// All named mixes.
    pub fn all() -> Vec<TrafficMix> {
        vec![
            TrafficMix::translate_heavy(),
            TrafficMix::repeated_query(),
            TrafficMix::apply_heavy(),
            TrafficMix::mixed(),
            TrafficMix::cold_cache_adversarial(),
        ]
    }

    /// Resolve a CLI name (as printed by [`TrafficMix::name`]).
    pub fn by_name(name: &str) -> Option<TrafficMix> {
        TrafficMix::all().into_iter().find(|m| m.name == name)
    }

    /// The mix's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether query choice within a pair is Zipf-skewed (see
    /// [`TrafficMix::repeated_query`]).
    pub fn zipf_queries(&self) -> bool {
        self.zipf_queries
    }

    /// The weight of one op.
    pub fn weight(&self, op: ServiceOp) -> u32 {
        let i = ServiceOp::ALL
            .iter()
            .position(|&o| o == op)
            .expect("in ALL");
        self.weights[i]
    }

    /// A custom mix (weights in [`ServiceOp::ALL`] order; must not all be
    /// zero).
    pub fn custom(name: &'static str, weights: [u32; 6]) -> Self {
        assert!(
            weights.iter().any(|&w| w > 0),
            "traffic mix needs at least one positive weight"
        );
        TrafficMix {
            name,
            weights,
            zipf_queries: false,
        }
    }

    /// Sample one operation (deterministic per RNG state).
    pub fn sample(&self, rng: &mut StdRng) -> ServiceOp {
        let total: u32 = self.weights.iter().sum();
        debug_assert!(total > 0, "mix has no positive weight");
        let mut roll = rng.random_range(0..total);
        for (i, &w) in self.weights.iter().enumerate() {
            if roll < w {
                return ServiceOp::ALL[i];
            }
            roll -= w;
        }
        unreachable!("roll exceeds total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn sampling_tracks_weights() {
        let mix = TrafficMix::translate_heavy();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for _ in 0..4_000 {
            *counts.entry(mix.sample(&mut rng).name()).or_default() += 1;
        }
        // Translate dominates; disabled ops never appear.
        assert!(counts["translate"] > 2_800, "{counts:?}");
        assert!(!counts.contains_key("evict"), "{counts:?}");
        assert!(!counts.contains_key("compile"), "{counts:?}");
        // Every positive-weight op shows up at this sample size.
        for op in [ServiceOp::Apply, ServiceOp::Invert, ServiceOp::Stats] {
            assert!(counts.contains_key(op.name()), "{op:?} missing: {counts:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = TrafficMix::mixed();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| mix.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn by_name_roundtrips_all_mixes() {
        for mix in TrafficMix::all() {
            assert_eq!(TrafficMix::by_name(mix.name()), Some(mix.clone()));
        }
        assert_eq!(TrafficMix::by_name("nope"), None);
    }

    #[test]
    fn adversarial_mix_evicts() {
        assert!(TrafficMix::cold_cache_adversarial().weight(ServiceOp::Evict) > 0);
        assert_eq!(TrafficMix::translate_heavy().weight(ServiceOp::Evict), 0);
    }

    #[test]
    fn repeated_query_mix_is_zipf_and_translate_dominated() {
        let mix = TrafficMix::repeated_query();
        assert!(mix.zipf_queries());
        assert_eq!(mix.weight(ServiceOp::Evict), 0);
        let total: u32 = ServiceOp::ALL.iter().map(|&o| mix.weight(o)).sum();
        assert!(mix.weight(ServiceOp::Translate) * 100 >= total * 90);
        // No other named mix skews queries.
        for other in TrafficMix::all() {
            if other.name() != mix.name() {
                assert!(!other.zipf_queries(), "{}", other.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn custom_rejects_all_zero() {
        let _ = TrafficMix::custom("zero", [0; 6]);
    }
}
