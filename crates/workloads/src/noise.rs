//! Structural noise: derive a target schema from a source so that the
//! source embeds in it by construction, with the *ground-truth* λ known.
//!
//! Three transforms, composable and seeded:
//!
//! * **wrap** — an edge `(A, B)` gains a fresh wrapper type (`A → W`,
//!   `W → B`), turning the edge into a 2-step path (the essence of schema
//!   embedding vs. plain graph similarity);
//! * **rename** — a type's tag is replaced by a synthetic one (semantic
//!   noise: name matching no longer identifies the pair);
//! * **extend** — a concatenation gains an extra required child subtree
//!   (the target is "more general", filled by minimum defaults).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use xse_dtd::{Dtd, Production};

/// A noised copy: the derived target plus ground truth.
pub struct NoisedCopy {
    /// The noised target schema.
    pub target: Dtd,
    /// Ground-truth λ: source type name → target type name.
    pub truth: HashMap<String, String>,
    /// How many wrap / rename / extend operations were applied.
    pub ops: (usize, usize, usize),
}

/// Noise intensity knobs (each a fraction of applicable sites, 0.0–1.0).
#[derive(Clone, Copy, Debug)]
pub struct NoiseConfig {
    /// Fraction of edges wrapped into 2-step paths.
    pub wrap: f64,
    /// Fraction of types renamed.
    pub rename: f64,
    /// Fraction of concatenations gaining an extra child.
    pub extend: f64,
}

impl NoiseConfig {
    /// A single "level" knob: level 0 = identical copy, 1.0 = heavy noise.
    pub fn level(l: f64) -> Self {
        NoiseConfig {
            wrap: l,
            rename: l * 0.6,
            extend: l * 0.5,
        }
    }
}

/// Working representation during rewriting.
struct Work {
    names: Vec<String>,
    prods: Vec<WProd>,
    root: usize,
}

enum WProd {
    Str,
    Empty,
    Concat(Vec<usize>),
    Disj(Vec<usize>, bool),
    Star(usize),
}

/// Produce a noised copy of `source`.
pub fn noised_copy(source: &Dtd, cfg: NoiseConfig, seed: u64) -> NoisedCopy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Work {
        names: source.types().map(|t| source.name(t).to_string()).collect(),
        prods: source
            .types()
            .map(|t| match source.production(t) {
                Production::Str => WProd::Str,
                Production::Empty => WProd::Empty,
                Production::Concat(cs) => WProd::Concat(cs.iter().map(|c| c.index()).collect()),
                Production::Disjunction { alts, allows_empty } => {
                    WProd::Disj(alts.iter().map(|c| c.index()).collect(), *allows_empty)
                }
                Production::Star(b) => WProd::Star(b.index()),
            })
            .collect(),
        root: source.root().index(),
    };
    let n_original = w.names.len();
    let mut wraps = 0;

    // 1. Wrap edges. Iterate the original types; each child slot may gain a
    //    wrapper type appended at the end.
    for t in 0..n_original {
        let arity = match &w.prods[t] {
            WProd::Concat(cs) => cs.len(),
            WProd::Disj(alts, _) => alts.len(),
            WProd::Star(_) => 1,
            _ => 0,
        };
        for slot in 0..arity {
            if !rng.random_bool(cfg.wrap) {
                continue;
            }
            let child = match &w.prods[t] {
                WProd::Concat(cs) => cs[slot],
                WProd::Disj(alts, _) => alts[slot],
                WProd::Star(b) => *b,
                _ => unreachable!(),
            };
            let wrapper = w.names.len();
            w.names
                .push(format!("wrap{wraps}_{}", w.names[child].clone()));
            w.prods.push(WProd::Concat(vec![child]));
            match &mut w.prods[t] {
                WProd::Concat(cs) => cs[slot] = wrapper,
                WProd::Disj(alts, _) => alts[slot] = wrapper,
                WProd::Star(b) => *b = wrapper,
                _ => unreachable!(),
            }
            wraps += 1;
        }
    }

    // 2. Rename original types (never the root, keeping examples readable).
    let mut renames = 0;
    for t in 0..n_original {
        if t != w.root && rng.random_bool(cfg.rename) {
            w.names[t] = format!("n{renames}_{}", w.names[t]);
            renames += 1;
        }
    }

    // 3. Extend concatenations with an extra required str child.
    let mut extends = 0;
    for t in 0..n_original {
        if matches!(w.prods[t], WProd::Concat(_)) && rng.random_bool(cfg.extend) {
            let extra = w.names.len();
            w.names.push(format!("extra{extends}"));
            w.prods.push(WProd::Str);
            if let WProd::Concat(cs) = &mut w.prods[t] {
                cs.push(extra);
            }
            extends += 1;
        }
    }

    // Build the Dtd.
    let mut b = Dtd::builder(w.names[w.root].clone());
    for (i, name) in w.names.iter().enumerate() {
        let refs: Vec<String>;
        b = match &w.prods[i] {
            WProd::Str => b.str_type(name),
            WProd::Empty => b.empty(name),
            WProd::Concat(cs) => {
                refs = cs.iter().map(|&c| w.names[c].clone()).collect();
                let r: Vec<&str> = refs.iter().map(String::as_str).collect();
                b.concat(name, &r)
            }
            WProd::Disj(alts, allows_empty) => {
                refs = alts.iter().map(|&c| w.names[c].clone()).collect();
                let r: Vec<&str> = refs.iter().map(String::as_str).collect();
                if *allows_empty {
                    b.disjunction_opt(name, &r)
                } else {
                    b.disjunction(name, &r)
                }
            }
            WProd::Star(c) => b.star(name, &w.names[*c]),
        };
    }
    let target = b.build().expect("noise preserves well-formedness");

    let truth: HashMap<String, String> = source
        .types()
        .map(|t| (source.name(t).to_string(), w.names[t.index()].clone()))
        .collect();
    NoisedCopy {
        target,
        truth,
        ops: (wraps, renames, extends),
    }
}

/// Ground-truth λ as a [`xse_core::TypeMapping`], for measuring discovery
/// accuracy.
pub fn truth_mapping(source: &Dtd, copy: &NoisedCopy) -> Result<xse_core::TypeMapping, String> {
    let mut map = Vec::with_capacity(source.type_count());
    for t in source.types() {
        let tgt_name = copy
            .truth
            .get(source.name(t))
            .ok_or_else(|| format!("no truth entry for {}", source.name(t)))?;
        let id = copy
            .target
            .type_id(tgt_name)
            .ok_or_else(|| format!("truth target {tgt_name} missing"))?;
        map.push(id);
    }
    Ok(xse_core::TypeMapping { map })
}

/// Convenience for tests/benches: does the discovered λ agree with ground
/// truth on every *source* type? (Paths may differ; the experiments score
/// λ-accuracy like the paper's "correct solutions".)
pub fn lambda_matches_truth(
    source: &Dtd,
    emb: &xse_core::CompiledEmbedding,
    copy: &NoisedCopy,
) -> bool {
    source.types().all(|t| {
        copy.truth.get(source.name(t)).map(String::as_str) == Some(copy.target.name(emb.lambda(t)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use xse_discovery::{find_embedding, DiscoveryConfig};

    #[test]
    fn zero_noise_is_an_identical_copy() {
        let src = corpus::fig1_class();
        let copy = noised_copy(&src, NoiseConfig::level(0.0), 1);
        assert_eq!(copy.ops, (0, 0, 0));
        assert_eq!(copy.target.type_count(), src.type_count());
        for t in src.types() {
            assert_eq!(copy.truth[src.name(t)], src.name(t));
        }
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let src = corpus::dblp_like();
        let a = noised_copy(&src, NoiseConfig::level(0.5), 42);
        let b = noised_copy(&src, NoiseConfig::level(0.5), 42);
        assert_eq!(a.target.to_string(), b.target.to_string());
        let c = noised_copy(&src, NoiseConfig::level(0.5), 43);
        assert!(a.ops != c.ops || a.target.to_string() != c.target.to_string());
    }

    #[test]
    fn noised_copies_stay_consistent() {
        for (name, src) in corpus::corpus() {
            for level in [0.2, 0.5, 0.9] {
                let copy = noised_copy(&src, NoiseConfig::level(level), 7);
                assert!(copy.target.is_consistent(), "{name} level {level}");
            }
        }
    }

    #[test]
    fn source_embeds_into_noised_copy_by_construction() {
        // With the exact ground-truth att, discovery must succeed: wrapping
        // turns edges into 2-step paths, extends only add default-filled
        // structure.
        let src = corpus::news_like();
        let copy = noised_copy(&src, NoiseConfig::level(0.6), 11);
        let att = crate::simgen::exact(&src, &copy);
        let emb = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default())
            .expect("ground-truth embedding must be found");
        assert!(lambda_matches_truth(&src, &emb, &copy));
    }

    #[test]
    fn truth_mapping_resolves() {
        let src = corpus::orders_like();
        let copy = noised_copy(&src, NoiseConfig::level(0.4), 3);
        let tm = truth_mapping(&src, &copy).unwrap();
        assert_eq!(tm.map.len(), src.type_count());
    }
}
