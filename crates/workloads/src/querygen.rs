//! Schema-aware random `XR` queries (TAB-2: translation size/time sweeps).
//!
//! Queries follow the source schema's labels so they are satisfiable on
//! typical instances, and keep `position()` on label steps so they sit in
//! the translatable fragment (DESIGN.md §3 item 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xse_dtd::{Dtd, Production, TypeId};
use xse_rxpath::{Qualifier, XrQuery};

/// Query-generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct QueryConfig {
    /// Maximum path depth.
    pub max_depth: usize,
    /// Probability of attaching a qualifier to a step.
    pub qualifier_p: f64,
    /// Probability of a union at the top level.
    pub union_p: f64,
    /// Probability of wrapping a schema cycle in a Kleene star when one is
    /// available.
    pub star_p: f64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            max_depth: 5,
            qualifier_p: 0.3,
            union_p: 0.25,
            star_p: 0.3,
        }
    }
}

/// Generate `count` random queries rooted at the schema root.
pub fn random_queries(dtd: &Dtd, cfg: QueryConfig, seed: u64, count: usize) -> Vec<XrQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_query(dtd, cfg, &mut rng))
        .collect()
}

fn random_query(dtd: &Dtd, cfg: QueryConfig, rng: &mut StdRng) -> XrQuery {
    let q = random_path(dtd, cfg, dtd.root(), cfg.max_depth, rng);
    if rng.random_bool(cfg.union_p) {
        q.or(random_path(dtd, cfg, dtd.root(), cfg.max_depth, rng))
    } else {
        q
    }
}

fn element_children(dtd: &Dtd, t: TypeId) -> Vec<TypeId> {
    dtd.production(t).children().to_vec()
}

fn random_path(
    dtd: &Dtd,
    cfg: QueryConfig,
    from: TypeId,
    depth: usize,
    rng: &mut StdRng,
) -> XrQuery {
    let mut q = XrQuery::Empty;
    let mut cur = from;
    let mut visited_on_path = vec![from];
    for _ in 0..depth {
        let children = element_children(dtd, cur);
        if children.is_empty() {
            // PCDATA leaf: sometimes descend into text().
            if matches!(dtd.production(cur), Production::Str) && rng.random_bool(0.5) {
                q = q.then(XrQuery::Text);
            }
            break;
        }
        let child = children[rng.random_range(0..children.len())];
        let mut step = XrQuery::label(dtd.name(child));
        if rng.random_bool(cfg.qualifier_p) {
            step = step.with(random_qualifier(dtd, cfg, cur, child, rng));
        }
        // Star a cycle when the step returns to a type already on the path.
        if visited_on_path.contains(&child) && rng.random_bool(cfg.star_p) {
            q = q.then(q_cycle(dtd, &visited_on_path, child));
            break;
        }
        visited_on_path.push(child);
        q = q.then(step);
        cur = child;
    }
    if matches!(q, XrQuery::Empty) {
        // Ensure nonempty queries: at least one step or self.
        q = XrQuery::Empty;
    }
    q
}

/// Build `(l1/l2/…/lk)*` for the detected cycle back to `to`.
fn q_cycle(dtd: &Dtd, path: &[TypeId], to: TypeId) -> XrQuery {
    let start = path.iter().position(|&t| t == to).unwrap_or(0);
    let cycle: Vec<XrQuery> = path[start + 1..]
        .iter()
        .chain(std::iter::once(&to))
        .map(|&t| XrQuery::label(dtd.name(t)))
        .collect();
    if cycle.is_empty() {
        XrQuery::Empty
    } else {
        XrQuery::seq_all(cycle).star()
    }
}

fn random_qualifier(
    dtd: &Dtd,
    _cfg: QueryConfig,
    parent: TypeId,
    child: TypeId,
    rng: &mut StdRng,
) -> Qualifier {
    let grandchildren = element_children(dtd, child);
    match rng.random_range(0..4) {
        // position() — on label steps only (translatable fragment).
        0 if matches!(dtd.production(parent), Production::Star(_)) => {
            Qualifier::Position(rng.random_range(1..4))
        }
        1 if !grandchildren.is_empty() => {
            let g = grandchildren[rng.random_range(0..grandchildren.len())];
            Qualifier::Path(Box::new(XrQuery::label(dtd.name(g))))
        }
        2 if matches!(dtd.production(child), Production::Str) => Qualifier::TextEq(
            Box::new(XrQuery::Text),
            format!("v{}", rng.random_range(0..50)),
        ),
        3 if !grandchildren.is_empty() => {
            let g = grandchildren[rng.random_range(0..grandchildren.len())];
            Qualifier::Not(Box::new(Qualifier::Path(Box::new(XrQuery::label(
                dtd.name(g),
            )))))
        }
        _ => Qualifier::True,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn queries_parse_print_roundtrip() {
        let d = corpus::fig1_class();
        for q in random_queries(&d, QueryConfig::default(), 11, 40) {
            let printed = q.to_string();
            let reparsed =
                xse_rxpath::parse_query(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(q, reparsed, "{printed}");
        }
    }

    #[test]
    fn queries_often_match_generated_instances() {
        use xse_dtd::{GenConfig, InstanceGenerator};
        let d = corpus::fig1_class();
        let gen = InstanceGenerator::new(
            &d,
            GenConfig {
                star_mean: 3.0,
                ..GenConfig::default()
            },
        );
        let t = gen.generate(5);
        let queries = random_queries(&d, QueryConfig::default(), 3, 60);
        let nonempty = queries.iter().filter(|q| !q.eval(&t).is_empty()).count();
        assert!(
            nonempty >= queries.len() / 4,
            "only {nonempty}/{} queries matched",
            queries.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = corpus::dblp_like();
        let a = random_queries(&d, QueryConfig::default(), 7, 10);
        let b = random_queries(&d, QueryConfig::default(), 7, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_schemas_produce_star_queries() {
        let d = corpus::fig1_class();
        let qs = random_queries(
            &d,
            QueryConfig {
                max_depth: 8,
                star_p: 1.0,
                ..QueryConfig::default()
            },
            2,
            200,
        );
        assert!(
            qs.iter().any(|q| q.uses_star()),
            "no starred query in 200 draws"
        );
    }
}
