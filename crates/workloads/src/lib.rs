//! Workloads for the experiment suite.
//!
//! The VLDB'05 evaluation maps "schemas taken from real-life and benchmark
//! sources to copies of these schemas with varying amounts of introduced
//! noise". This crate provides the substitute described in DESIGN.md §2:
//!
//! * [`corpus`] — benchmark-shaped DTDs (the paper's Figure 1 schemas, plus
//!   DBLP / XMark / Mondial / TPC-H / GedML / news lookalikes);
//! * [`scale`] — parametric schema families for size sweeps;
//! * [`noise`] — structural noise: wrap edges into paths, rename tags, add
//!   extra target structure — every transform preserves embeddability of
//!   the original schema into the noised copy, so ground truth is known;
//! * [`simgen`] — similarity matrices with controlled accuracy/ambiguity;
//! * [`querygen`] — schema-aware random `XR` queries for the translation
//!   experiments.

pub mod corpus;
pub mod noise;
pub mod querygen;
pub mod scale;
pub mod simgen;
pub mod traffic;
