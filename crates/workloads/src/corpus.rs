//! The schema corpus: Figure 1 plus benchmark-shaped DTDs.
//!
//! Shapes (fan-out, recursion, mix of concatenation / disjunction / star /
//! PCDATA) mirror well-known public DTDs at the sizes the paper reports
//! ("schemas up to a few hundred nodes"); see DESIGN.md §2 for why this
//! substitution preserves the experiments' meaning.

use xse_dtd::Dtd;

/// The paper's Figure 1(a): the class DTD `S0`.
pub fn fig1_class() -> Dtd {
    Dtd::parse(
        "<!ELEMENT db (class)*>\
         <!ELEMENT class (cno, title, type)>\
         <!ELEMENT cno (#PCDATA)>\
         <!ELEMENT title (#PCDATA)>\
         <!ELEMENT type (regular | project)>\
         <!ELEMENT regular (prereq)>\
         <!ELEMENT prereq (class)*>\
         <!ELEMENT project (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// The paper's Figure 1(b): the student DTD `S1`.
pub fn fig1_student() -> Dtd {
    Dtd::parse(
        "<!ELEMENT sdb (student)*>\
         <!ELEMENT student (ssn, name, taking)>\
         <!ELEMENT ssn (#PCDATA)>\
         <!ELEMENT name (#PCDATA)>\
         <!ELEMENT taking (cno)*>\
         <!ELEMENT cno (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// The paper's Figure 1(c): the school DTD `S` (target of Examples 4.2 and
/// 4.9). `class2` stands in for the inner `class` tag — our DTDs keep tag
/// names unique per type, as the paper's normal form does.
pub fn fig1_school() -> Dtd {
    Dtd::parse(
        "<!ELEMENT school (courses, students)>\
         <!ELEMENT courses (history, current)>\
         <!ELEMENT history (course)*>\
         <!ELEMENT current (course)*>\
         <!ELEMENT course (basic, category)>\
         <!ELEMENT basic (cno, credit, class2)>\
         <!ELEMENT cno (#PCDATA)>\
         <!ELEMENT credit (#PCDATA)>\
         <!ELEMENT class2 (semester)*>\
         <!ELEMENT semester (title, year, term, instructor)>\
         <!ELEMENT title (#PCDATA)>\
         <!ELEMENT year (#PCDATA)>\
         <!ELEMENT term (#PCDATA)>\
         <!ELEMENT instructor (#PCDATA)>\
         <!ELEMENT category (mandatory | advanced)>\
         <!ELEMENT mandatory (regular | lab)>\
         <!ELEMENT advanced (project)>\
         <!ELEMENT project (#PCDATA)>\
         <!ELEMENT regular (required)>\
         <!ELEMENT required (prereq)*>\
         <!ELEMENT prereq (course)*>\
         <!ELEMENT lab (#PCDATA)>\
         <!ELEMENT students (student)*>\
         <!ELEMENT student (ssn, name, gpa, taking)>\
         <!ELEMENT ssn (#PCDATA)>\
         <!ELEMENT name (#PCDATA)>\
         <!ELEMENT gpa (#PCDATA)>\
         <!ELEMENT taking (cno2)*>\
         <!ELEMENT cno2 (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// A DBLP-shaped bibliography DTD.
pub fn dblp_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT dblp (entry)*>\
         <!ELEMENT entry (article | inproceedings | book)>\
         <!ELEMENT article (authors, atitle, journal, volume, ayear, pages)>\
         <!ELEMENT inproceedings (iauthors, ititle, booktitle, iyear, ipages)>\
         <!ELEMENT book (bauthors, btitle, publisher, byear, isbn)>\
         <!ELEMENT authors (author)*>\
         <!ELEMENT iauthors (author)*>\
         <!ELEMENT bauthors (author)*>\
         <!ELEMENT author (#PCDATA)>\
         <!ELEMENT atitle (#PCDATA)>\
         <!ELEMENT ititle (#PCDATA)>\
         <!ELEMENT btitle (#PCDATA)>\
         <!ELEMENT journal (#PCDATA)>\
         <!ELEMENT booktitle (#PCDATA)>\
         <!ELEMENT publisher (#PCDATA)>\
         <!ELEMENT volume (#PCDATA)>\
         <!ELEMENT ayear (#PCDATA)>\
         <!ELEMENT iyear (#PCDATA)>\
         <!ELEMENT byear (#PCDATA)>\
         <!ELEMENT pages (#PCDATA)>\
         <!ELEMENT ipages (#PCDATA)>\
         <!ELEMENT isbn (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// An XMark-shaped auction-site DTD (recursive item descriptions).
pub fn auction_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT site (regions, people, open_auctions)>\
         <!ELEMENT regions (africa, asia, europe)>\
         <!ELEMENT africa (item)*>\
         <!ELEMENT asia (item)*>\
         <!ELEMENT europe (item)*>\
         <!ELEMENT item (iname, location, quantity, description)>\
         <!ELEMENT iname (#PCDATA)>\
         <!ELEMENT location (#PCDATA)>\
         <!ELEMENT quantity (#PCDATA)>\
         <!ELEMENT description (text | parlist)>\
         <!ELEMENT text (#PCDATA)>\
         <!ELEMENT parlist (listitem)*>\
         <!ELEMENT listitem (description)>\
         <!ELEMENT people (person)*>\
         <!ELEMENT person (pname, emailaddress, profile)>\
         <!ELEMENT pname (#PCDATA)>\
         <!ELEMENT emailaddress (#PCDATA)>\
         <!ELEMENT profile (interest)*>\
         <!ELEMENT interest (#PCDATA)>\
         <!ELEMENT open_auctions (open_auction)*>\
         <!ELEMENT open_auction (initial, bidder, itemref, seller)>\
         <!ELEMENT initial (#PCDATA)>\
         <!ELEMENT bidder (increase)*>\
         <!ELEMENT increase (#PCDATA)>\
         <!ELEMENT itemref (#PCDATA)>\
         <!ELEMENT seller (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// A Mondial-shaped geography DTD.
pub fn mondial_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT mondial (country)*>\
         <!ELEMENT country (cname, capital, population, province_list, memberships)>\
         <!ELEMENT cname (#PCDATA)>\
         <!ELEMENT capital (#PCDATA)>\
         <!ELEMENT population (#PCDATA)>\
         <!ELEMENT province_list (province)*>\
         <!ELEMENT province (prname, parea, city_list)>\
         <!ELEMENT prname (#PCDATA)>\
         <!ELEMENT parea (#PCDATA)>\
         <!ELEMENT city_list (city)*>\
         <!ELEMENT city (ctname, cpop, located_at)>\
         <!ELEMENT ctname (#PCDATA)>\
         <!ELEMENT cpop (#PCDATA)>\
         <!ELEMENT located_at (river | sea | lake | nowhere)>\
         <!ELEMENT river (#PCDATA)>\
         <!ELEMENT sea (#PCDATA)>\
         <!ELEMENT lake (#PCDATA)>\
         <!ELEMENT nowhere EMPTY>\
         <!ELEMENT memberships (org)*>\
         <!ELEMENT org (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// A TPC-H-shaped orders DTD.
pub fn orders_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT tpcd (customer)*>\
         <!ELEMENT customer (custkey, cust_name, nation, orders)>\
         <!ELEMENT custkey (#PCDATA)>\
         <!ELEMENT cust_name (#PCDATA)>\
         <!ELEMENT nation (#PCDATA)>\
         <!ELEMENT orders (order)*>\
         <!ELEMENT order (orderkey, orderstatus, totalprice, lineitems)>\
         <!ELEMENT orderkey (#PCDATA)>\
         <!ELEMENT orderstatus (open | shipped | closed)>\
         <!ELEMENT open EMPTY>\
         <!ELEMENT shipped EMPTY>\
         <!ELEMENT closed EMPTY>\
         <!ELEMENT totalprice (#PCDATA)>\
         <!ELEMENT lineitems (lineitem)*>\
         <!ELEMENT lineitem (partkey, lquantity, extendedprice, discount)>\
         <!ELEMENT partkey (#PCDATA)>\
         <!ELEMENT lquantity (#PCDATA)>\
         <!ELEMENT extendedprice (#PCDATA)>\
         <!ELEMENT discount (#PCDATA)>",
    )
    .expect("static corpus schema")
}

/// A GedML-shaped genealogy DTD (mutually recursive families/individuals).
pub fn genealogy_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT ged (indi)*>\
         <!ELEMENT indi (gname, sex, birth, fams)>\
         <!ELEMENT gname (#PCDATA)>\
         <!ELEMENT sex (male | female)>\
         <!ELEMENT male EMPTY>\
         <!ELEMENT female EMPTY>\
         <!ELEMENT birth (date, place)>\
         <!ELEMENT date (#PCDATA)>\
         <!ELEMENT place (#PCDATA)>\
         <!ELEMENT fams (fam)*>\
         <!ELEMENT fam (marriage, children)>\
         <!ELEMENT marriage (date2)>\
         <!ELEMENT date2 (#PCDATA)>\
         <!ELEMENT children (indi)*>",
    )
    .expect("static corpus schema")
}

/// A news-feed DTD.
pub fn news_like() -> Dtd {
    Dtd::parse(
        "<!ELEMENT feed (channel)*>\
         <!ELEMENT channel (chtitle, lang, article_list)>\
         <!ELEMENT chtitle (#PCDATA)>\
         <!ELEMENT lang (#PCDATA)>\
         <!ELEMENT article_list (news_item)*>\
         <!ELEMENT news_item (headline, byline, body, media)>\
         <!ELEMENT headline (#PCDATA)>\
         <!ELEMENT byline (#PCDATA)>\
         <!ELEMENT body (para)*>\
         <!ELEMENT para (#PCDATA)>\
         <!ELEMENT media (photo | video | none)>\
         <!ELEMENT photo (#PCDATA)>\
         <!ELEMENT video (#PCDATA)>\
         <!ELEMENT none EMPTY>",
    )
    .expect("static corpus schema")
}

/// The full named corpus used by TAB-1 and the accuracy experiments.
pub fn corpus() -> Vec<(&'static str, Dtd)> {
    vec![
        ("fig1-class", fig1_class()),
        ("fig1-student", fig1_student()),
        ("dblp", dblp_like()),
        ("auction", auction_like()),
        ("mondial", mondial_like()),
        ("orders", orders_like()),
        ("genealogy", genealogy_like()),
        ("news", news_like()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_corpus_schemas_are_consistent() {
        for (name, d) in corpus() {
            assert!(d.is_consistent(), "{name} has useless types");
            assert!(d.type_count() >= 6, "{name} too small");
        }
        assert!(fig1_school().is_consistent());
    }

    #[test]
    fn fig1_shapes_match_the_paper() {
        let s0 = fig1_class();
        assert!(s0.is_recursive(), "class/prereq recursion");
        let s = fig1_school();
        assert!(s.is_recursive(), "course/prereq recursion");
        assert!(s.type_count() > s0.type_count(), "target more general");
        let s1 = fig1_student();
        assert!(!s1.is_recursive());
    }

    #[test]
    fn corpus_instances_generate_and_validate() {
        use xse_dtd::{GenConfig, InstanceGenerator};
        for (name, d) in corpus() {
            let gen = InstanceGenerator::new(
                &d,
                GenConfig {
                    max_nodes: 500,
                    ..GenConfig::default()
                },
            );
            let t = gen.generate(1);
            d.validate(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
