//! Similarity-matrix generators with controlled accuracy and ambiguity —
//! the `att` noise knobs of the VLDB'05 experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xse_core::SimilarityMatrix;
use xse_dtd::Dtd;

use crate::noise::NoisedCopy;

/// The unambiguous ground-truth matrix: `att(A, truth(A)) = 1`, 0 elsewhere
/// ("when the semantic correspondences are unique, it is easy to identify
/// local embeddings", §5.2).
pub fn exact(source: &Dtd, copy: &NoisedCopy) -> SimilarityMatrix {
    let mut m = SimilarityMatrix::zero(source.type_count(), copy.target.type_count());
    for a in source.types() {
        if let Some(b) = copy
            .truth
            .get(source.name(a))
            .and_then(|n| copy.target.type_id(n))
        {
            m.set(a, b, 1.0);
        }
    }
    m
}

/// Knobs for [`ambiguous`].
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Probability that the true pair receives the row's best score.
    pub accuracy: f64,
    /// Expected number of spurious positive entries per source type.
    pub ambiguity: f64,
}

/// A noisy matrix: the true pair scores high with probability `accuracy`
/// (otherwise it is demoted below a random competitor), and around
/// `ambiguity` random wrong pairs per row receive mid-range scores.
pub fn ambiguous(source: &Dtd, copy: &NoisedCopy, cfg: SimConfig, seed: u64) -> SimilarityMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let tgt = &copy.target;
    let mut m = SimilarityMatrix::zero(source.type_count(), tgt.type_count());
    let tgt_ids: Vec<_> = tgt.types().collect();
    for a in source.types() {
        let truth = copy.truth.get(source.name(a)).and_then(|n| tgt.type_id(n));
        // Spurious candidates.
        let spurious = {
            // Poisson-ish: floor + Bernoulli remainder.
            let base = cfg.ambiguity.floor() as usize;
            base + usize::from(rng.random_bool(cfg.ambiguity.fract().clamp(0.0, 1.0)))
        };
        for _ in 0..spurious {
            let b = tgt_ids[rng.random_range(0..tgt_ids.len())];
            if Some(b) != truth {
                m.set(a, b, rng.random_range(0.3..0.9));
            }
        }
        if let Some(b) = truth {
            if rng.random_bool(cfg.accuracy.clamp(0.0, 1.0)) {
                m.set(a, b, rng.random_range(0.9..1.0));
            } else {
                // Demoted truth: still positive (the embedding exists) but
                // outranked by a spurious competitor.
                m.set(a, b, rng.random_range(0.1..0.3));
                let b2 = tgt_ids[rng.random_range(0..tgt_ids.len())];
                if Some(b2) != truth {
                    m.set(a, b2, rng.random_range(0.9..1.0));
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::noise::{noised_copy, NoiseConfig};

    #[test]
    fn exact_matrix_has_one_candidate_per_row() {
        let src = corpus::fig1_class();
        let copy = noised_copy(&src, NoiseConfig::level(0.3), 5);
        let m = exact(&src, &copy);
        for a in src.types() {
            assert_eq!(m.ambiguity(a), 1, "row {}", src.name(a));
            assert_eq!(m.candidates(a)[0].1, 1.0);
        }
    }

    #[test]
    fn ambiguity_knob_adds_candidates() {
        let src = corpus::dblp_like();
        let copy = noised_copy(&src, NoiseConfig::level(0.2), 5);
        let low = ambiguous(
            &src,
            &copy,
            SimConfig {
                accuracy: 1.0,
                ambiguity: 0.0,
            },
            9,
        );
        let high = ambiguous(
            &src,
            &copy,
            SimConfig {
                accuracy: 1.0,
                ambiguity: 5.0,
            },
            9,
        );
        let low_avg: f64 =
            src.types().map(|a| low.ambiguity(a) as f64).sum::<f64>() / src.type_count() as f64;
        let high_avg: f64 =
            src.types().map(|a| high.ambiguity(a) as f64).sum::<f64>() / src.type_count() as f64;
        assert!(high_avg > low_avg + 1.0, "{low_avg} vs {high_avg}");
    }

    #[test]
    fn truth_stays_positive_even_when_demoted() {
        let src = corpus::news_like();
        let copy = noised_copy(&src, NoiseConfig::level(0.2), 5);
        let m = ambiguous(
            &src,
            &copy,
            SimConfig {
                accuracy: 0.0,
                ambiguity: 2.0,
            },
            9,
        );
        for a in src.types() {
            let truth = copy.truth[src.name(a)].clone();
            let b = copy.target.type_id(&truth).unwrap();
            assert!(m.get(a, b) > 0.0, "truth must stay admissible");
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let src = corpus::orders_like();
        let copy = noised_copy(&src, NoiseConfig::level(0.2), 5);
        let cfg = SimConfig {
            accuracy: 0.7,
            ambiguity: 2.0,
        };
        let a = ambiguous(&src, &copy, cfg, 33);
        let b = ambiguous(&src, &copy, cfg, 33);
        for s in src.types() {
            for t in copy.target.types() {
                assert_eq!(a.get(s, t), b.get(s, t));
            }
        }
    }
}
