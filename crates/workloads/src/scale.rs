//! Parametric schema families for size sweeps (EXP-C: "running time vs.
//! schema size, 10–400 types").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xse_dtd::Dtd;

/// A random **consistent** DTD with exactly `n` element types.
///
/// Construction: a random spanning tree over the types fixes reachability
/// (every type has a parent among earlier types); each node's production is
/// then derived from its tree children — concatenations and disjunctions
/// for wide nodes, stars for unary ones, PCDATA/EMPTY leaves — plus
/// or-guarded back-edges (`X → ancestor + ε`) for recursion, which keeps
/// every type productive by construction.
pub fn random_schema(n: usize, seed: u64) -> Dtd {
    assert!(n >= 3, "need at least root, inner, leaf");
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();

    // Random spanning tree; parents biased toward recent nodes for
    // realistic depth.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 1..n {
        let lo = i.saturating_sub(8);
        let parent = rng.random_range(lo..i);
        children[parent].push(i);
    }

    let mut b = Dtd::builder(names[0].clone());
    for i in 0..n {
        let kids = &children[i];
        b = match kids.len() {
            0 => {
                // Leaf: PCDATA, EMPTY, or an or-guarded recursive hook.
                match rng.random_range(0..10) {
                    0..=6 => b.str_type(&names[i]),
                    7..=8 => b.empty(&names[i]),
                    _ => {
                        let back = rng.random_range(0..i.max(1));
                        b.disjunction_opt(&names[i], &[&names[back]])
                    }
                }
            }
            1 => {
                let c = names[kids[0]].clone();
                match rng.random_range(0..10) {
                    0..=4 => b.star(&names[i], &c),
                    5..=7 => b.concat(&names[i], &[&c]),
                    _ => b.disjunction_opt(&names[i], &[&c]),
                }
            }
            _ => {
                let refs: Vec<&str> = kids.iter().map(|&k| names[k].as_str()).collect();
                if rng.random_bool(0.75) {
                    b.concat(&names[i], &refs)
                } else if rng.random_bool(0.4) {
                    b.disjunction_opt(&names[i], &refs)
                } else {
                    b.disjunction(&names[i], &refs)
                }
            }
        };
    }
    let d = b.build().expect("generated schema is well-formed");
    debug_assert!(d.is_consistent(), "spanning tree guarantees consistency");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schemas_are_consistent_at_all_sizes() {
        for n in [3, 10, 50, 200, 400] {
            let d = random_schema(n, 7);
            assert_eq!(d.type_count(), n);
            assert!(d.is_consistent(), "size {n} has useless types");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            random_schema(40, 9).to_string(),
            random_schema(40, 9).to_string()
        );
        assert_ne!(
            random_schema(40, 9).to_string(),
            random_schema(40, 10).to_string()
        );
    }

    #[test]
    fn schemas_generate_instances() {
        use xse_dtd::{GenConfig, InstanceGenerator};
        for seed in 0..5 {
            let d = random_schema(60, seed);
            let gen = InstanceGenerator::new(
                &d,
                GenConfig {
                    max_nodes: 400,
                    ..GenConfig::default()
                },
            );
            let t = gen.generate(0);
            d.validate(&t).unwrap();
        }
    }

    #[test]
    fn some_generated_schemas_are_recursive() {
        let recursive = (0..20)
            .filter(|&s| random_schema(80, s).is_recursive())
            .count();
        assert!(recursive >= 5, "only {recursive}/20 recursive");
    }
}
