//! Property-based suites (proptest) over randomized schemas, documents and
//! queries: the paper's theorems as invariants.

use proptest::prelude::*;

use xse::core::preserve;
use xse::dtd::{GenConfig, InstanceGenerator};
use xse::prelude::*;
use xse::rxpath::Evaluator;
use xse::workloads::noise::{noised_copy, NoiseConfig};
use xse::workloads::querygen::{random_queries, QueryConfig};
use xse::workloads::{scale, simgen};
use xse::xslt::apply_stylesheet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random schema → random instance → it validates.
    #[test]
    fn generated_instances_conform(n in 5usize..40, seed in 0u64..500) {
        let dtd = scale::random_schema(n, seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 200, ..GenConfig::default() },
        );
        let t = gen.generate(seed);
        prop_assert!(dtd.validate(&t).is_ok());
    }

    /// XML serialization roundtrips through the parser.
    #[test]
    fn xml_roundtrip(n in 5usize..30, seed in 0u64..500) {
        let dtd = scale::random_schema(n, seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        );
        let t = gen.generate(seed ^ 7);
        let compact = parse_xml(&t.to_xml()).unwrap();
        prop_assert!(compact.equals(&t));
        let pretty = parse_xml(&t.to_xml_pretty()).unwrap();
        prop_assert!(pretty.equals(&t));
    }

    /// `parse_xml(serialize(t)) = t` (paper tree equality — isomorphism
    /// ignoring ids) over the named workload corpus schemas, not just
    /// random ones.
    #[test]
    fn corpus_xml_roundtrip(seed in 0u64..200) {
        for (name, dtd) in xse::workloads::corpus::corpus() {
            let gen = InstanceGenerator::new(
                &dtd,
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            );
            let t = gen.generate(seed);
            let back = parse_xml(&t.to_xml()).unwrap();
            prop_assert!(back.equals(&t), "{}: {:?}", name, back.first_difference(&t));
            let pretty = parse_xml(&t.to_xml_pretty()).unwrap();
            prop_assert!(pretty.equals(&t), "{} (pretty)", name);
        }
    }

    /// Freezing (CSR-compacting) a tree is observationally invisible:
    /// equality, `dom(T)` (the id set), document order and serialization
    /// are all unchanged, and the tree stays mutable afterwards.
    #[test]
    fn freeze_preserves_tree_observations(n in 5usize..30, seed in 0u64..500) {
        let dtd = scale::random_schema(n, seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        );
        let t = gen.generate(seed ^ 0x51);
        let mut frozen = t.clone();
        frozen.freeze();
        prop_assert!(frozen.equals(&t));
        prop_assert_eq!(frozen.len(), t.len(), "dom(T) is stable");
        let before: Vec<NodeId> = t.preorder().collect();
        let after: Vec<NodeId> = frozen.preorder().collect();
        prop_assert_eq!(before, after, "document order and ids are stable");
        prop_assert_eq!(frozen.to_xml(), t.to_xml());
        // Mutation after freeze invalidates and re-compacts transparently.
        let extra = frozen.add_element(frozen.root(), "post_freeze");
        prop_assert_eq!(frozen.children(frozen.root()).last(), Some(&extra));
    }

    /// Theorems 4.1 + 4.3(a): discovered embeddings over noised copies are
    /// type safe, injective and invertible on random instances.
    #[test]
    fn discovered_embeddings_preserve_information(
        n in 6usize..24,
        schema_seed in 0u64..200,
        noise in 0.0f64..0.6,
        doc_seed in 0u64..100,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(noise), schema_seed ^ 0xA5);
        let att = simgen::exact(&src, &copy);
        // Discovery is heuristic; treat "not found" as a skip, soundness of
        // found embeddings as the property.
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 150, ..GenConfig::default() },
            );
            let t1 = gen.generate(doc_seed);
            prop_assert!(preserve::check_type_safety(&emb, &t1).is_ok());
            prop_assert!(preserve::check_injectivity(&emb, &t1).is_ok());
            prop_assert!(preserve::check_roundtrip(&emb, &t1).is_ok());
        }
    }

    /// Theorem 4.3(b): query preservation and the |Tr(Q)| bound on random
    /// queries over a discovered embedding.
    #[test]
    fn query_preservation_on_random_queries(
        n in 6usize..20,
        schema_seed in 0u64..100,
        q_seed in 0u64..100,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(0.3), schema_seed ^ 0x5A);
        let att = simgen::exact(&src, &copy);
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            );
            let t1 = gen.generate(q_seed);
            for q in random_queries(&src, QueryConfig::default(), q_seed, 6) {
                prop_assert!(
                    preserve::check_query_preservation(&emb, &t1, &q).is_ok(),
                    "query {q}"
                );
                prop_assert!(preserve::check_translation_bound(&emb, &q).is_ok());
            }
        }
    }

    /// §4.3: generated stylesheets agree with the direct algorithms.
    #[test]
    fn xslt_agrees_with_direct_mapping(
        n in 6usize..18,
        schema_seed in 0u64..100,
        doc_seed in 0u64..50,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(0.3), schema_seed ^ 0x33);
        let att = simgen::exact(&src, &copy);
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let fwd = generate_forward(&emb);
            let inv = generate_inverse(&emb);
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            );
            let t1 = gen.generate(doc_seed);
            let direct = emb.apply(&t1).unwrap().tree;
            let via = apply_stylesheet(&fwd, &t1, None).unwrap();
            prop_assert!(direct.equals(&via), "{:?}", direct.first_difference(&via));
            let back = apply_stylesheet(&inv, &via, None).unwrap();
            prop_assert!(back.equals(&t1), "{:?}", back.first_difference(&t1));
        }
    }

    /// The ANFA representation evaluates exactly like the direct XR
    /// evaluator on random schema-derived queries.
    #[test]
    fn anfa_matches_direct_evaluation(
        n in 5usize..25,
        schema_seed in 0u64..200,
        q_seed in 0u64..200,
    ) {
        let dtd = scale::random_schema(n, schema_seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        );
        let t = gen.generate(q_seed ^ 3);
        let ev = Evaluator::new(&t);
        for q in random_queries(&dtd, QueryConfig::default(), q_seed, 6) {
            let direct = ev.eval(&q, t.root());
            let Ok(anfa) = xse::anfa::Anfa::from_query(&q) else { continue };
            prop_assert_eq!(&direct, &anfa.eval_root(&t), "query {}", q);
            // And through state elimination back to XR.
            if let Some(q2) = anfa.to_query() {
                prop_assert_eq!(&direct, &ev.eval(&q2, t.root()), "reprinted {}", q2);
            }
        }
    }
}

// §4.5 multi-source helpers: round-trip and validation-preservation
// properties over randomized schemas and instances.
proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `split_instance ∘ combine_instances = id` on random per-source
    /// documents, and the combined instance validates against the combined
    /// DTD built from prefixed sources.
    #[test]
    fn multi_combine_then_split_is_identity(
        n1 in 4usize..16,
        n2 in 4usize..16,
        seed in 0u64..200,
    ) {
        use xse::core::multi;
        let d1 = multi::prefix_types(&scale::random_schema(n1, seed), "p_");
        let d2 = multi::prefix_types(&scale::random_schema(n2, seed ^ 0x9E37), "q_");
        let combined_dtd = multi::combine_sources("sources", &[&d1, &d2]).unwrap();
        let t1 = multi::prefix_instance(
            &InstanceGenerator::new(
                &scale::random_schema(n1, seed),
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            )
            .generate(seed),
            "p_",
        );
        let t2 = multi::prefix_instance(
            &InstanceGenerator::new(
                &scale::random_schema(n2, seed ^ 0x9E37),
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            )
            .generate(seed ^ 1),
            "q_",
        );
        let both = multi::combine_instances("sources", &[&t1, &t2]);
        prop_assert!(combined_dtd.validate(&both).is_ok());
        let parts = multi::split_instance(&both);
        prop_assert_eq!(parts.len(), 2);
        prop_assert!(parts[0].equals(&t1));
        prop_assert!(parts[1].equals(&t2));
    }

    /// `prefix_instance` preserves validation: a valid instance of `S`
    /// stays valid against `prefix_types(S)` (and stays equal through a
    /// serialize/parse round-trip).
    #[test]
    fn multi_prefix_instance_preserves_validation(
        n in 4usize..24,
        seed in 0u64..300,
    ) {
        use xse::core::multi;
        let dtd = scale::random_schema(n, seed);
        let t = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        )
        .generate(seed);
        prop_assert!(dtd.validate(&t).is_ok());
        let pd = multi::prefix_types(&dtd, "px_");
        let pt = multi::prefix_instance(&t, "px_");
        prop_assert!(pd.validate(&pt).is_ok());
        let reparsed = parse_xml(&pt.to_xml()).unwrap();
        prop_assert!(reparsed.equals(&pt));
    }

    /// Name collisions are always rejected by `combine_sources`, and always
    /// fixed by prefixing — for arbitrary random schemas, not just the
    /// corpus fixtures.
    #[test]
    fn multi_collisions_rejected_then_fixed(n in 4usize..16, seed in 0u64..200) {
        use xse::core::multi;
        let dtd = scale::random_schema(n, seed);
        prop_assert!(multi::combine_sources("sources", &[&dtd, &dtd]).is_err());
        let a = multi::prefix_types(&dtd, "a_");
        let b = multi::prefix_types(&dtd, "b_");
        let combined = multi::combine_sources("sources", &[&a, &b]).unwrap();
        prop_assert!(combined.is_consistent());
        prop_assert_eq!(combined.type_count(), 1 + 2 * dtd.type_count());
    }
}
