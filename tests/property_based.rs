//! Property-based suites (proptest) over randomized schemas, documents and
//! queries: the paper's theorems as invariants.

use proptest::prelude::*;

use xse::core::preserve;
use xse::dtd::{GenConfig, InstanceGenerator};
use xse::prelude::*;
use xse::rxpath::Evaluator;
use xse::workloads::noise::{noised_copy, NoiseConfig};
use xse::workloads::querygen::{random_queries, QueryConfig};
use xse::workloads::{scale, simgen};
use xse::xslt::apply_stylesheet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random schema → random instance → it validates.
    #[test]
    fn generated_instances_conform(n in 5usize..40, seed in 0u64..500) {
        let dtd = scale::random_schema(n, seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 200, ..GenConfig::default() },
        );
        let t = gen.generate(seed);
        prop_assert!(dtd.validate(&t).is_ok());
    }

    /// XML serialization roundtrips through the parser.
    #[test]
    fn xml_roundtrip(n in 5usize..30, seed in 0u64..500) {
        let dtd = scale::random_schema(n, seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        );
        let t = gen.generate(seed ^ 7);
        let compact = parse_xml(&t.to_xml()).unwrap();
        prop_assert!(compact.equals(&t));
        let pretty = parse_xml(&t.to_xml_pretty()).unwrap();
        prop_assert!(pretty.equals(&t));
    }

    /// Theorems 4.1 + 4.3(a): discovered embeddings over noised copies are
    /// type safe, injective and invertible on random instances.
    #[test]
    fn discovered_embeddings_preserve_information(
        n in 6usize..24,
        schema_seed in 0u64..200,
        noise in 0.0f64..0.6,
        doc_seed in 0u64..100,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(noise), schema_seed ^ 0xA5);
        let att = simgen::exact(&src, &copy);
        // Discovery is heuristic; treat "not found" as a skip, soundness of
        // found embeddings as the property.
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 150, ..GenConfig::default() },
            );
            let t1 = gen.generate(doc_seed);
            prop_assert!(preserve::check_type_safety(&emb, &t1).is_ok());
            prop_assert!(preserve::check_injectivity(&emb, &t1).is_ok());
            prop_assert!(preserve::check_roundtrip(&emb, &t1).is_ok());
        }
    }

    /// Theorem 4.3(b): query preservation and the |Tr(Q)| bound on random
    /// queries over a discovered embedding.
    #[test]
    fn query_preservation_on_random_queries(
        n in 6usize..20,
        schema_seed in 0u64..100,
        q_seed in 0u64..100,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(0.3), schema_seed ^ 0x5A);
        let att = simgen::exact(&src, &copy);
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            );
            let t1 = gen.generate(q_seed);
            for q in random_queries(&src, QueryConfig::default(), q_seed, 6) {
                prop_assert!(
                    preserve::check_query_preservation(&emb, &t1, &q).is_ok(),
                    "query {q}"
                );
                prop_assert!(preserve::check_translation_bound(&emb, &q).is_ok());
            }
        }
    }

    /// §4.3: generated stylesheets agree with the direct algorithms.
    #[test]
    fn xslt_agrees_with_direct_mapping(
        n in 6usize..18,
        schema_seed in 0u64..100,
        doc_seed in 0u64..50,
    ) {
        let src = scale::random_schema(n, schema_seed);
        let copy = noised_copy(&src, NoiseConfig::level(0.3), schema_seed ^ 0x33);
        let att = simgen::exact(&src, &copy);
        if let Some(emb) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            let fwd = generate_forward(&emb);
            let inv = generate_inverse(&emb);
            let gen = InstanceGenerator::new(
                &src,
                GenConfig { max_nodes: 120, ..GenConfig::default() },
            );
            let t1 = gen.generate(doc_seed);
            let direct = emb.apply(&t1).unwrap().tree;
            let via = apply_stylesheet(&fwd, &t1, None).unwrap();
            prop_assert!(direct.equals(&via), "{:?}", direct.first_difference(&via));
            let back = apply_stylesheet(&inv, &via, None).unwrap();
            prop_assert!(back.equals(&t1), "{:?}", back.first_difference(&t1));
        }
    }

    /// The ANFA representation evaluates exactly like the direct XR
    /// evaluator on random schema-derived queries.
    #[test]
    fn anfa_matches_direct_evaluation(
        n in 5usize..25,
        schema_seed in 0u64..200,
        q_seed in 0u64..200,
    ) {
        let dtd = scale::random_schema(n, schema_seed);
        let gen = InstanceGenerator::new(
            &dtd,
            GenConfig { max_nodes: 150, ..GenConfig::default() },
        );
        let t = gen.generate(q_seed ^ 3);
        let ev = Evaluator::new(&t);
        for q in random_queries(&dtd, QueryConfig::default(), q_seed, 6) {
            let direct = ev.eval(&q, t.root());
            let Ok(anfa) = xse::anfa::Anfa::from_query(&q) else { continue };
            prop_assert_eq!(&direct, &anfa.eval_root(&t), "query {}", q);
            // And through state elimination back to XR.
            if let Some(q2) = anfa.to_query() {
                prop_assert_eq!(&direct, &ev.eval(&q2, t.root()), "reprinted {}", q2);
            }
        }
    }
}
