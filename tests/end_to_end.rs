//! Integration tests spanning the whole pipeline:
//! parse → discover → map → query-translate → invert → XSLT.

use xse::core::{multi, preserve};
use xse::dtd::{GenConfig, InstanceGenerator};
use xse::prelude::*;
use xse::workloads::noise::{lambda_matches_truth, noised_copy, NoiseConfig};
use xse::workloads::querygen::{random_queries, QueryConfig};
use xse::workloads::{corpus, simgen};
use xse::xslt::apply_stylesheet;

/// Every corpus schema: noise it, discover the embedding, and verify every
/// paper guarantee on generated instances and random queries.
#[test]
fn corpus_discovery_preserves_information() {
    for (name, src) in corpus::corpus() {
        let copy = noised_copy(&src, NoiseConfig::level(0.4), 99);
        let att = simgen::exact(&src, &copy);
        let emb = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default())
            .unwrap_or_else(|| panic!("{name}: discovery failed"));
        assert!(lambda_matches_truth(&src, &emb, &copy), "{name}: wrong λ");

        let gen = InstanceGenerator::new(
            &src,
            GenConfig {
                max_nodes: 300,
                ..GenConfig::default()
            },
        );
        let queries = random_queries(&src, QueryConfig::default(), 3, 8);
        for seed in 0..4 {
            let t1 = gen.generate(seed);
            preserve::check_all(&emb, &t1, &queries)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

/// The full school scenario through parsed DTD text and XSLT.
#[test]
fn school_pipeline_via_dtd_text_and_xslt() {
    let s0 = corpus::fig1_class();
    let s = corpus::fig1_school();
    let mut att = SimilarityMatrix::by_name(&s0, &s, 0.0);
    att.set(s0.type_id("db").unwrap(), s.root(), 1.0);
    att.set(
        s0.type_id("class").unwrap(),
        s.type_id("course").unwrap(),
        1.0,
    );
    att.set(
        s0.type_id("type").unwrap(),
        s.type_id("category").unwrap(),
        1.0,
    );
    let cfg = DiscoveryConfig {
        restarts: 60,
        ..DiscoveryConfig::default()
    };
    let emb = find_embedding(&s0, &s, &att, &cfg).expect("Example 4.2 exists");

    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: 250,
            ..GenConfig::default()
        },
    );
    let fwd = generate_forward(&emb);
    let inv = generate_inverse(&emb);
    for seed in 0..6 {
        let t1 = gen.generate(seed);
        let direct = emb.apply(&t1).unwrap();
        s.validate(&direct.tree).unwrap();
        let via = apply_stylesheet(&fwd, &t1, None).unwrap();
        assert!(direct.tree.equals(&via), "forward XSLT diverged");
        let back = apply_stylesheet(&inv, &via, None).unwrap();
        assert!(back.equals(&t1), "inverse XSLT diverged");
    }
}

/// Multi-source integration: both Figure 1 sources into the school target
/// simultaneously, via the combined-source construction.
#[test]
fn multi_source_combined_embedding() {
    let s0 = multi::prefix_types(&corpus::fig1_class(), "c_");
    let s1 = multi::prefix_types(&corpus::fig1_student(), "s_");
    let combined = multi::combine_sources("sources", &[&s0, &s1]).unwrap();
    assert!(combined.is_consistent());

    let d0 = InstanceGenerator::new(&s0, GenConfig::default()).generate(1);
    let d1 = InstanceGenerator::new(&s1, GenConfig::default()).generate(2);
    let both = multi::combine_instances("sources", &[&d0, &d1]);
    combined.validate(&both).unwrap();
    let parts = multi::split_instance(&both);
    assert!(parts[0].equals(&d0));
    assert!(parts[1].equals(&d1));
}

/// Translated queries must never leak target-side padding nodes, even for
/// queries over every label of the schema (the Figure 7 pitfall).
#[test]
fn translated_queries_never_match_padding() {
    let src = corpus::fig1_class();
    let copy = noised_copy(&src, NoiseConfig::level(0.5), 7);
    let att = simgen::exact(&src, &copy);
    let emb = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()).unwrap();
    let t1 = InstanceGenerator::new(&src, GenConfig::default()).generate(11);
    let out = emb.apply(&t1).unwrap();

    // `.//X` for every source label: results must all be idM-mapped.
    for ty in src.types() {
        let q = parse_query(&format!(".//{}", src.name(ty))).unwrap();
        let tr = emb.translate(&q).unwrap();
        let hits = tr.eval(&out.tree);
        let mapped = out.idmap.map_result(hits.iter().copied()).count();
        assert_eq!(hits.len(), mapped, "{} leaked padding", src.name(ty));
    }
}

/// The Example 4.2 embedding, pinned explicitly (shared fixture — one
/// authoritative copy of the builder chain lives in `xse_bench::fixtures`).
fn fig1_embedding() -> CompiledEmbedding {
    let (s0, s) = xse_bench::fixtures::fig1_pair();
    xse_bench::fixtures::fig1_embedding(&s0, &s)
}

/// Inverse detects tampered documents instead of fabricating sources.
#[test]
fn inverse_rejects_tampering() {
    let s = corpus::fig1_school();
    // Pinned explicitly (a discovered embedding could legitimately route
    // around the tampered region).
    let emb = fig1_embedding();
    // A conforming school document that σd cannot have produced: its
    // `class2` holds no semester, but σd always materializes semester[1].
    let t2 = parse_xml(
        "<school><courses><history/><current><course>\
           <basic><cno>X</cno><credit>c</credit><class2/></basic>\
           <category><advanced><project>p</project></advanced></category>\
         </course></current></courses>\
         <students><student><ssn>s</ssn><name>n</name><gpa>g</gpa><taking/></student></students>\
         </school>",
    )
    .unwrap();
    s.validate(&t2).unwrap();
    assert!(emb.invert(&t2).is_err());
}

/// Acceptance for the compiled engine: it is owned (`'static`),
/// `Send + Sync`, survives its input schemas, and `apply_batch` over 64+
/// generated documents produces byte-identical trees to sequential `apply`.
#[test]
fn compiled_embedding_is_owned_and_batch_matches_sequential() {
    fn assert_engine<T: Send + Sync + 'static>(t: T) -> T {
        t
    }
    // Build inside a block so the source DTDs are dropped before use: an
    // owned engine must not borrow them.
    let emb = {
        let emb = fig1_embedding();
        assert_engine(emb)
    };

    let gen = InstanceGenerator::new(
        emb.source(),
        GenConfig {
            max_nodes: 200,
            ..GenConfig::default()
        },
    );
    let docs: Vec<XmlTree> = (0..64u64).map(|seed| gen.generate(seed)).collect();
    assert!(docs.len() >= 64);

    let sequential: Vec<String> = docs
        .iter()
        .map(|d| emb.apply(d).unwrap().tree.to_xml())
        .collect();
    for threads in [
        1,
        3,
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    ] {
        let batch = emb.apply_batch_with(&docs, threads);
        let batch_xml: Vec<String> = batch
            .into_iter()
            .map(|r| r.unwrap().tree.to_xml())
            .collect();
        assert_eq!(batch_xml, sequential, "threads = {threads}");
    }
    // The default entry point agrees too.
    let auto: Vec<String> = emb
        .apply_batch(&docs)
        .into_iter()
        .map(|r| r.unwrap().tree.to_xml())
        .collect();
    assert_eq!(auto, sequential);
}

/// A discovered embedding is equally owned: share it across scoped threads
/// without cloning (the ROADMAP's "compile once, serve many" shape).
#[test]
fn discovered_embedding_is_shared_across_threads() {
    let src = corpus::fig1_class();
    let copy = noised_copy(&src, NoiseConfig::level(0.3), 5);
    let att = simgen::exact(&src, &copy);
    let emb = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()).unwrap();
    let gen = InstanceGenerator::new(&src, GenConfig::default());
    let docs: Vec<XmlTree> = (0..8u64).map(|s| gen.generate(s)).collect();
    let expected: Vec<String> = docs
        .iter()
        .map(|d| emb.apply(d).unwrap().tree.to_xml())
        .collect();
    let shared = &emb;
    std::thread::scope(|scope| {
        let handles: Vec<_> = docs
            .iter()
            .zip(expected.iter())
            .map(|(doc, want)| {
                scope.spawn(move || {
                    assert_eq!(shared.apply(doc).unwrap().tree.to_xml(), *want);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
