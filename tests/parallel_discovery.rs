//! Parallel-vs-sequential determinism of the discovery restart engine.
//!
//! `DiscoveryConfig::threads` must never change *what* is discovered:
//! every attempt index seeds its RNG from `(seed, index)` alone and the
//! lowest successful index wins, so `threads = 1` and `threads = 8` must
//! produce byte-identical `describe()` output for the same config — across
//! a hand-written wrap pair, the paper's Figure 1 school pair, and a
//! 200-type random schema, on both success and exhaustion paths.

use xse::prelude::*;
use xse::workloads::noise::{noised_copy, NoiseConfig};
use xse::workloads::scale::random_schema;
use xse::workloads::simgen::{ambiguous, exact, SimConfig};

/// `describe()` under `threads = 1` and `threads = 8` (None = not found).
fn describe_1_vs_8(
    source: &Dtd,
    target: &Dtd,
    att: &SimilarityMatrix,
    cfg: &DiscoveryConfig,
) -> (Option<String>, Option<String>) {
    let sequential = DiscoveryConfig {
        threads: 1,
        ..cfg.clone()
    };
    let parallel = DiscoveryConfig {
        threads: 8,
        ..cfg.clone()
    };
    (
        find_embedding(source, target, att, &sequential).map(|e| e.describe()),
        find_embedding(source, target, att, &parallel).map(|e| e.describe()),
    )
}

#[test]
fn wrap_pair_is_thread_count_invariant() {
    let source = Dtd::parse(
        "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)>\
         <!ELEMENT b (c)*><!ELEMENT c (#PCDATA)>",
    )
    .unwrap();
    let target = Dtd::parse(
        "<!ELEMENT r (x, y)><!ELEMENT x (a, pad)><!ELEMENT a (#PCDATA)>\
         <!ELEMENT pad (#PCDATA)><!ELEMENT y (w)><!ELEMENT w (c2)*>\
         <!ELEMENT c2 (c)><!ELEMENT c (#PCDATA)>",
    )
    .unwrap();
    let att = SimilarityMatrix::permissive(&source, &target);
    for strategy in [
        Strategy::Random,
        Strategy::QualityOrdered,
        Strategy::IndependentSet,
    ] {
        let cfg = DiscoveryConfig {
            strategy,
            ..DiscoveryConfig::default()
        };
        let (seq, par) = describe_1_vs_8(&source, &target, &att, &cfg);
        assert!(seq.is_some(), "{strategy:?}: wrap pair must embed");
        assert_eq!(seq, par, "{strategy:?} diverged across thread counts");
    }
}

#[test]
fn fig1_school_pair_is_thread_count_invariant() {
    let s0 = xse::workloads::corpus::fig1_class();
    let s = xse::workloads::corpus::fig1_school();
    // Name-based matrix with the paper's cross-name pairs allowed.
    let mut att = SimilarityMatrix::by_name(&s0, &s, 0.0);
    att.set(s0.type_id("db").unwrap(), s.root(), 1.0);
    att.set(
        s0.type_id("class").unwrap(),
        s.type_id("course").unwrap(),
        1.0,
    );
    att.set(
        s0.type_id("type").unwrap(),
        s.type_id("category").unwrap(),
        1.0,
    );
    let cfg = DiscoveryConfig {
        restarts: 60,
        ..DiscoveryConfig::default()
    };
    let (seq, par) = describe_1_vs_8(&s0, &s, &att, &cfg);
    assert!(seq.is_some(), "the Example 4.2 embedding exists");
    assert_eq!(seq, par, "Figure 1 pair diverged across thread counts");
}

#[test]
fn random_schema_200_is_thread_count_invariant() {
    let src = random_schema(200, 200);
    let copy = noised_copy(&src, NoiseConfig::level(0.25), 17);

    // Exact ground-truth att: the easy, unambiguous regime.
    let att = exact(&src, &copy);
    let cfg = DiscoveryConfig::default();
    let (seq, par) = describe_1_vs_8(&src, &copy.target, &att, &cfg);
    assert!(seq.is_some(), "noised self-copy with exact att must embed");
    assert_eq!(seq, par, "n=200 exact att diverged across thread counts");

    // Ambiguous att: restarts actually fail, so the winner-selection rule
    // (lowest attempt index) is exercised for real.
    let att = ambiguous(
        &src,
        &copy,
        SimConfig {
            accuracy: 0.85,
            ambiguity: 2.0,
        },
        0x5EED,
    );
    let cfg = DiscoveryConfig {
        restarts: 16,
        ..DiscoveryConfig::default()
    };
    let (seq, par) = describe_1_vs_8(&src, &copy.target, &att, &cfg);
    assert_eq!(
        seq, par,
        "n=200 ambiguous att diverged across thread counts"
    );
}

#[test]
fn parallel_exhaustion_returns_none_with_correct_attempts() {
    // Source needs two prefix-free AND paths; target offers a single unary
    // chain of disjunctions — unembeddable, so every restart is consumed.
    let source = Dtd::parse("<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
    let target = Dtd::parse("<!ELEMENT r (x)?><!ELEMENT x (r2)?><!ELEMENT r2 EMPTY>").unwrap();
    let att = SimilarityMatrix::permissive(&source, &target);
    for threads in [1usize, 8] {
        let cfg = DiscoveryConfig {
            threads,
            ..DiscoveryConfig::default()
        };
        let (found, stats) = find_embedding_with_stats(&source, &target, &att, &cfg);
        assert!(found.is_none(), "threads={threads}: pair is unembeddable");
        assert_eq!(
            stats.attempts, cfg.restarts,
            "threads={threads}: exhaustion must consume every restart"
        );
    }
}
