//! # `xse` — Information Preserving XML Schema Embedding
//!
//! A Rust implementation of **Fan & Bohannon, *Information Preserving XML
//! Schema Embedding*** (VLDB 2005; extended in ACM TODS 33(1), 2008).
//!
//! A *schema embedding* `σ = (λ, path)` maps every element type of a source
//! DTD to a type of a target DTD and every *edge* of the source schema graph
//! to a *path* of the target graph, subject to path-type and prefix-free
//! validity conditions. The library is built around one artifact — the
//! **compiled embedding**: assemble `σ` once (by hand through a fallible
//! builder, or automatically through discovery), validate and compile it
//! once, then run the derived operations as often as you like:
//!
//! * an instance-level mapping `σd` that is **type safe** (the output
//!   conforms to the target DTD) and **injective** (Theorem 4.1), with a
//!   batch mode that fans documents out over threads;
//! * an **inverse** `σd⁻¹` recovering the source document (Theorem 4.3a);
//! * a **query translation** `Tr` such that every regular XPath query `Q`
//!   over the source satisfies `Q(T) = idM(Tr(Q)(σd(T)))` (Theorem 4.3b);
//! * **XSLT stylesheets** implementing `σd` and `σd⁻¹` (Section 4.3);
//! * heuristic **discovery** of embeddings from a similarity matrix
//!   (Section 5 — the problem itself is NP-complete, Theorem 5.1). The
//!   restart search runs on a parallel engine
//!   ([`DiscoveryConfig::threads`](crate::discovery::DiscoveryConfig::threads))
//!   that returns a byte-identical embedding for every thread count.
//!
//! The compiled engine ([`CompiledEmbedding`](crate::core::CompiledEmbedding))
//! owns its schemas via `Arc`, carries no lifetime parameter, and is
//! `Send + Sync` — build it once, share it across threads, serve traffic.
//!
//! The facade re-exports the workspace crates under stable module names:
//!
//! | module | contents |
//! |--------|----------|
//! | [`xmltree`] | ordered labeled trees, node ids, `idM` |
//! | [`dtd`] | DTDs, schema graphs, validation, `mindef`, instance generation |
//! | [`rxpath`] | regular XPath (`XR`) and the XPath fragment `X` |
//! | [`anfa`] | annotated NFAs representing `XR` queries |
//! | [`core`] | compiled embeddings, `σd`, `σd⁻¹`, `Tr`, preservation checkers |
//! | [`xslt`] | the §4.3 XSLT processing model + stylesheet generation |
//! | [`discovery`] | computing embeddings (prefix-free paths, heuristics) |
//! | [`workloads`] | schema corpus, noise, similarity, query and traffic generators |
//! | [`service`] | embedding registry, TCP wire protocol, retrying client, fault injection, load generator |
//!
//! ## Quickstart
//!
//! ```
//! use xse::prelude::*;
//!
//! // A source catalog embeds into a more general target that wraps every
//! // region one level deeper and adds extra (default-filled) structure.
//! let source = Dtd::parse(
//!     "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)>\
//!      <!ELEMENT b (c)*><!ELEMENT c (#PCDATA)>",
//! ).unwrap();
//! let target = Dtd::parse(
//!     "<!ELEMENT r (x, y)><!ELEMENT x (a, pad)><!ELEMENT a (#PCDATA)>\
//!      <!ELEMENT pad (#PCDATA)><!ELEMENT y (w)><!ELEMENT w (c2)*>\
//!      <!ELEMENT c2 (c)><!ELEMENT c (#PCDATA)>",
//! ).unwrap();
//!
//! // 1. Discover a valid embedding from a similarity matrix (§5). The
//! //    result is owned and `Send + Sync` — no lifetimes, safe to store.
//! let att = SimilarityMatrix::permissive(&source, &target);
//! let embedding: CompiledEmbedding =
//!     find_embedding(&source, &target, &att, &DiscoveryConfig::default())
//!         .expect("source embeds into target");
//!
//! // …or write the same embedding out by hand with the fallible builder
//! // (errors accumulate — nothing panics on a typo'd tag or path):
//! let embedding = EmbeddingBuilder::new(source, target.clone())
//!     .map_type("b", "w")
//!     .edge("r", "a", "x/a")
//!     .edge("r", "b", "y/w")
//!     .edge("b", "c", "c2/c")
//!     .text_edge("a", "text()")
//!     .text_edge("c", "text()")
//!     .build()
//!     .unwrap();
//!
//! // 2. Map an instance (Theorem 4.1: type safe) and invert it back
//! //    (Theorem 4.3a: information is preserved).
//! let doc = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c></b></r>").unwrap();
//! let out = embedding.apply(&doc).unwrap();
//! target.validate(&out.tree).unwrap();
//! let back = embedding.invert(&out.tree).unwrap();
//! assert!(back.equals(&doc));
//!
//! // 3. Queries translate too (Theorem 4.3b): Q(T) = idM(Tr(Q)(σd(T))).
//! let q = parse_query("b/c[position() = 2]/text()").unwrap();
//! let translated = embedding.translate(&q).unwrap();
//! let direct = q.eval(&doc);
//! let mapped: Vec<_> = out.idmap.map_result(translated.eval(&out.tree)).collect();
//! assert_eq!(direct, mapped);
//!
//! // 4. Batches fan out over scoped threads — same results, in order.
//! let docs = vec![doc.clone(), doc.clone(), doc];
//! for result in embedding.apply_batch(&docs) {
//!     assert!(target.validate(&result.unwrap().tree).is_ok());
//! }
//! ```
//!
//! ## Translation
//!
//! [`CompiledEmbedding::translate`](crate::core::CompiledEmbedding::translate)
//! does not re-run the `Tr` construction per call: each query is reduced
//! to a canonical *shape key* ([`shape_key`](crate::rxpath::shape_key) —
//! equivalent spellings like `a[true]` and `a` share one key) and the
//! compiled [`TranslatePlan`](crate::core::TranslatePlan) — the pruned
//! product ANFA plus tag-id transition tables — is cached per embedding
//! (bounded, LRU). Repeat translations return the same
//! `Arc<TranslatePlan>`; [`plan_stats`](crate::core::CompiledEmbedding::plan_stats)
//! exposes the hit/miss counters. For hot loops,
//! [`TranslatePlan::eval_with`](crate::core::TranslatePlan::eval_with)
//! reuses caller-owned scratch buffers so evaluation allocates nothing
//! per call:
//!
//! ```
//! use std::sync::Arc;
//! use xse::prelude::*;
//!
//! let source = Dtd::parse(
//!     "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)>\
//!      <!ELEMENT b (c)*><!ELEMENT c (#PCDATA)>",
//! ).unwrap();
//! let att = SimilarityMatrix::permissive(&source, &source);
//! let embedding =
//!     find_embedding(&source, &source, &att, &DiscoveryConfig::default()).unwrap();
//! let doc = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c></b></r>").unwrap();
//! let out = embedding.apply(&doc).unwrap();
//!
//! // First call compiles the plan; an equivalent spelling reuses it.
//! let q = parse_query("b/c").unwrap();
//! let plan = embedding.translate(&q).unwrap();
//! let again = embedding.translate(&parse_query("./b[true]/c").unwrap()).unwrap();
//! assert!(Arc::ptr_eq(&plan, &again));
//! let stats: PlanCacheStats = embedding.plan_stats();
//! assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
//!
//! // Warm-path evaluation with pooled scratch: no per-call allocations.
//! let mut scratch = EvalScratch::new();
//! let mut matches = Vec::new();
//! plan.eval_with(&out.tree, &mut scratch, &mut matches);
//! let mapped: Vec<_> = out.idmap.map_result(matches).collect();
//! assert_eq!(mapped, q.eval(&doc));
//! ```
//!
//! ## Serving
//!
//! Compilation (discovery) is the expensive step; everything derived from
//! a [`CompiledEmbedding`](crate::core::CompiledEmbedding) is cheap. The
//! [`service`] crate packages that asymmetry for long-running processes:
//! an [`EmbeddingRegistry`](crate::service::EmbeddingRegistry) caches
//! compiled embeddings keyed by the *canonical content hashes*
//! ([`DtdHash`](crate::dtd::DtdHash)) of the reduced DTD pair — permuted
//! but equivalent DTD texts share one entry — with single-flight
//! compilation (N concurrent requests for an uncached pair compile once)
//! and weighted (compile-cost × recency) eviction. The registry is
//! lock-striped across
//! [`RegistryConfig::shards`](crate::service::RegistryConfig) independent shards
//! (default 8) keyed by the pair hash: each shard has its own mutex,
//! single-flight table and negative cache, and warm hits resolve through
//! a read-locked fast table without ever touching a shard mutex — a hot
//! `Arc` clone never blocks behind another pair's compile. `shards: 1`
//! reproduces single-mutex behavior exactly; aggregate
//! [`stats`](crate::service::EmbeddingRegistry::stats) are a monotone
//! merge over shards. A `std`-only TCP server and client
//! ([`service::Server`] / [`service::Client`]) expose `compile`,
//! `apply`, `invert`, `translate`, `stats` and `evict` over a
//! length-prefixed binary protocol (documented in [`service`]), and the
//! `xse-loadgen` binary replays
//! [`TrafficMix`](crate::workloads::traffic::TrafficMix) workloads against
//! either endpoint, reporting per-op latency percentiles, QPS and cache
//! hit rates:
//!
//! ```
//! use std::sync::Arc;
//! use xse::prelude::*;
//!
//! let registry = Arc::new(EmbeddingRegistry::new(RegistryConfig::default()));
//! let source = "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>";
//! // Same schema, spelled differently: one cache entry, one compile.
//! let source_permuted = "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>";
//! let (key, engine) = registry.get_or_compile(source, source).unwrap();
//! let (key2, _) = registry.get_or_compile(source_permuted, source).unwrap();
//! assert_eq!(key, key2);
//! assert_eq!(registry.stats().compiles, 1);
//! assert!(engine.apply(&parse_xml("<r><a>x</a></r>").unwrap()).is_ok());
//! ```
//!
//! Every frame carries a u32 *request id*: id 0 is the legacy strictly
//! in-order lane ([`Client`](crate::service::Client)), while a nonzero
//! id opts the connection into pipelining —
//! [`PipelinedClient`](crate::service::PipelinedClient) keeps a window
//! of requests in flight and the server completes them out of order,
//! matching responses to requests by id alone. `xse-loadgen
//! --connections N --inflight K` measures the contended path
//! (see `EXPERIMENTS.md`):
//!
//! ```
//! use std::sync::Arc;
//! use xse::prelude::*;
//! use xse::service::{Request, Response};
//!
//! let registry = Arc::new(EmbeddingRegistry::new(RegistryConfig::default()));
//! let server = Server::bind(("127.0.0.1", 0), registry, ServerConfig::default()).unwrap();
//!
//! let mut client = PipelinedClient::connect(server.addr()).unwrap();
//! let source = "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>";
//! // Two requests on the wire before either response is read.
//! let first = client
//!     .submit(&Request::Compile { source_dtd: source.into(), target_dtd: source.into() })
//!     .unwrap();
//! let second = client.submit(&Request::Stats).unwrap();
//! assert_eq!(client.in_flight(), 2);
//! // Responses are matched to requests by id, whatever order they land in.
//! for _ in 0..2 {
//!     let (id, resp) = client.recv().unwrap();
//!     match resp {
//!         Response::Compiled { .. } => assert_eq!(id, first),
//!         Response::Stats(_) => assert_eq!(id, second),
//!         other => panic!("unexpected {other:?}"),
//!     }
//! }
//! assert_eq!(client.in_flight(), 0);
//! ```
//!
//! ## Robustness
//!
//! The serving layer is built to degrade predictably rather than wedge:
//! the server enforces per-connection read/write deadlines and a
//! per-request time budget, sheds connections with a structured
//! `Overloaded` error frame when its accept queue is full, and drains
//! gracefully on shutdown
//! ([`ServerConfig`](crate::service::ServerConfig)). The client side
//! bounds every phase (`connect_timeout`, read/write deadlines on
//! [`ClientConfig`](crate::service::ClientConfig)) and classifies
//! failures: connect-phase errors and pre-execution rejections
//! (`Overloaded`, `Malformed`, `UnknownOpcode`) are always safe to
//! retry, post-send transport failures are retried only for idempotent
//! requests, and structured application errors are never retried.
//! [`RetryingClient`](crate::service::RetryingClient) packages that
//! policy with exponential backoff and deterministic seeded jitter
//! ([`RetryPolicy`](crate::service::RetryPolicy)); registries remember
//! repeatedly failing DTD pairs in a TTL-bounded negative cache
//! ([`RegistryConfig::negative_ttl`](crate::service::RegistryConfig));
//! and a deterministic in-process chaos proxy
//! ([`service::fault::FaultProxy`])
//! injects delays, resets, truncations and opcode corruption on a seeded
//! schedule for tests and the `xse-loadgen --chaos` soak:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use xse::prelude::*;
//! use xse::service::Request;
//!
//! let registry = Arc::new(EmbeddingRegistry::new(RegistryConfig::default()));
//! let server = Server::bind(
//!     ("127.0.0.1", 0),
//!     registry,
//!     ServerConfig {
//!         read_timeout: Some(Duration::from_secs(2)),
//!         request_budget: Some(Duration::from_secs(5)),
//!         ..ServerConfig::default()
//!     },
//! )
//! .unwrap();
//!
//! // Retries are bounded, backoff is jittered deterministically per seed,
//! // and only safe-to-retry failures are retried at all.
//! let mut client = RetryingClient::new(
//!     server.addr(),
//!     ClientConfig {
//!         connect_timeout: Some(Duration::from_millis(500)),
//!         ..ClientConfig::default()
//!     },
//!     RetryPolicy { max_attempts: 3, seed: 42, ..RetryPolicy::default() },
//! )
//! .unwrap();
//! let source = "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>";
//! let reply = client
//!     .call(&Request::Compile {
//!         source_dtd: source.into(),
//!         target_dtd: source.into(),
//!     })
//!     .unwrap();
//! assert!(matches!(reply, xse::service::Response::Compiled { .. }));
//! assert_eq!(client.stats().retries, 0); // healthy server: first try lands
//! ```

pub use xse_anfa as anfa;
pub use xse_core as core;
pub use xse_discovery as discovery;
pub use xse_dtd as dtd;
pub use xse_rxpath as rxpath;
pub use xse_service as service;
pub use xse_workloads as workloads;
pub use xse_xmltree as xmltree;
pub use xse_xslt as xslt;

/// One-stop imports for examples and applications.
///
/// The surface is panic-free by construction: embeddings are assembled with
/// the fallible [`EmbeddingBuilder`](xse_core::EmbeddingBuilder) and every
/// failure is an [`EmbeddingError`](xse_core::EmbeddingError). (The
/// deprecated lifetime-bound `Embedding` shim is intentionally *not* here;
/// reach it as `xse::core::Embedding` during migration.)
pub mod prelude {
    pub use xse_anfa::EvalScratch;
    pub use xse_core::{
        CompiledEmbedding, EmbeddingBuilder, EmbeddingError, MappingOutput, PlanCacheStats,
        SimilarityMatrix, TranslatePlan, TypeMapping,
    };
    pub use xse_discovery::{
        find_embedding, find_embedding_with_stats, DiscoveryConfig, DiscoveryStats, Strategy,
    };
    pub use xse_dtd::{Dtd, Production, TypeId};
    pub use xse_rxpath::{parse_query, XrQuery};
    pub use xse_service::{
        Client, ClientConfig, EmbeddingRegistry, PipelinedClient, RegistryConfig, RetryPolicy,
        RetryingClient, Server, ServerConfig,
    };
    pub use xse_xmltree::{parse_xml, IdMap, NodeId, TreeBuilder, XmlTree};
    pub use xse_xslt::{generate_forward, generate_inverse, Stylesheet, StylesheetGen};
}
