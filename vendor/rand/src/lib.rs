//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`] (seeded via [`SeedableRng::seed_from_u64`]), the
//! [`Rng`] extension methods `random`, `random_range`, `random_bool`,
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a fast,
//! high-quality deterministic generator. It is **not** the cryptographic
//! ChaCha12 generator of the real crate and must not be used for anything
//! security-sensitive; every consumer in this workspace wants seeded,
//! reproducible pseudo-randomness for tests, workloads and heuristics.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, mirroring `rand::Rng` (0.9 naming).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`bool`, ints, or a float in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in `range`; panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`; panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, mirroring `rand::SeedableRng` (only `seed_from_u64` is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::random`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (`Rng::random_range`).
pub trait SampleUniform: Sized + PartialOrd + Copy {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                assert!(span > 0, "random_range: empty range");
                // Modulo bias is ≤ span/2⁶⁴ — irrelevant for a test/workload RNG.
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "random_range: empty float range");
                lo + <$t as Standard>::from_rng(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument of `Rng::random_range`.
pub trait SampleRange<T: SampleUniform> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (deterministic, non-cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore, SampleUniform};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = sample_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[sample_index(rng, self.len())])
            }
        }
    }

    fn sample_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        usize::sample_in(0, n, false, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(5usize..40);
            assert!((5..40).contains(&x));
            let y = rng.random_range(0.3f64..0.9);
            assert!((0.3..0.9).contains(&y));
            let z = rng.random_range(1..=4);
            assert!((1..=4).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn random_bool_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let picked = v.choose(&mut rng).unwrap();
        assert!(v.contains(picked));
    }
}
