//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion 0.5 API the bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warmup pass, then a fixed
//! number of timed batches reporting the median per-iteration time — so
//! `cargo bench` completes in seconds and stays useful for coarse
//! comparisons. There are no statistical plots, no outlier analysis and no
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, reported as elements or bytes per second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_benchmark(&name, sample_size, measurement_time, None, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_benchmark(&id.name, sample_size, measurement_time, None, &mut |b| {
            f(b, input)
        });
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_benchmark(
            &id,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_benchmark(
            &id,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Anything convertible to a [`BenchmarkId`] (criterion accepts plain strings).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl<S: Into<String>> IntoBenchmarkId for S {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.into() }
    }
}

/// Timing loop handle passed to the closure under measurement.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        // Aim each sample at ~1ms of work so short routines are batched.
        self.iters_per_sample = (Duration::from_millis(1).as_nanos() as u64)
            .checked_div(once.as_nanos().max(1) as u64)
            .unwrap_or(1)
            .clamp(1, 10_000);
        let n = self.samples.capacity();
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    _measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", si(n as f64 / (median * 1e-9))),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!("  {:>11}B/s", si(n as f64 / (median * 1e-9)))
        }
    });
    println!(
        "{id:<50} time: [{} {} {}]{}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        rate.unwrap_or_default(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Defines a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Defines `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            runs += 1;
        });
        g.finish();
        assert_eq!(runs, 1);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").name, "p");
    }
}
