//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property suites use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range strategies over integers and floats, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! its generated inputs (via the panic message prefix added by the runner)
//! and stops. Generation is deterministic per test function name, so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields we honor).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no rejection sampling).
        pub max_global_rejects: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 1024,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A source of generated values; implemented for primitive ranges.
pub trait Strategy {
    type Value: core::fmt::Debug;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Runs one property: `cases` iterations of sampled inputs.
///
/// Used by the [`proptest!`] expansion; not public API in the real crate,
/// hidden from docs here.
#[doc(hidden)]
pub fn run_property(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut StdRng, u32)) {
    // Deterministic seed per property so failures reproduce without a
    // persistence file: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..config.cases {
        case(&mut rng, i);
    }
}

/// The proptest entry macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng, case| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                let inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?} "),*),
                    case $(, $arg)*
                );
                let _ = &inputs;
                $crate::__run_case(&inputs, || { $body });
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Runs one case, prefixing any panic with the generated inputs.
#[doc(hidden)]
pub fn __run_case(inputs: &str, case: impl FnOnce()) {
    struct Announce<'a>(&'a str, bool);
    impl Drop for Announce<'_> {
        fn drop(&mut self) {
            if self.1 && std::thread::panicking() {
                eprintln!("proptest case failed with inputs: {}", self.0);
            }
        }
    }
    let mut guard = Announce(inputs, true);
    case();
    guard.1 = false;
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(n in 5usize..40, seed in 0u64..500, x in 0.0f64..0.6) {
            prop_assert!((5..40).contains(&n));
            prop_assert!(seed < 500);
            prop_assert!((0.0..0.6).contains(&x));
        }

        /// Doc comments and trailing commas are accepted.
        #[test]
        fn trailing_comma(a in 0i32..10,) {
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn cases_counted() {
        let mut n = 0;
        crate::run_property(
            "cases_counted",
            &ProptestConfig {
                cases: 24,
                ..ProptestConfig::default()
            },
            |_, _| n += 1,
        );
        assert_eq!(n, 24);
    }
}
