//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property suites use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range strategies over integers and floats, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Failing cases **shrink**: each generated argument is repeatedly halved
//! toward its range's lower bound while the failure reproduces (naive
//! greedy halving — no binary search back up, no persistence file). The
//! final panic reports the shrunken inputs. Generation is deterministic
//! per test function name, so failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields we honor).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no rejection sampling).
        pub max_global_rejects: u32,
        /// Maximum shrink probes (re-runs of the body) per failing case;
        /// `0` disables shrinking.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 1024,
                max_shrink_iters: 1024,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A source of generated values; implemented for primitive ranges.
pub trait Strategy {
    type Value: core::fmt::Debug + Clone;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
    /// Propose a simpler value, or `None` when `value` is already minimal.
    /// The default never shrinks.
    fn shrink(&self, _value: &Self::Value) -> Option<Self::Value> {
        None
    }
}

macro_rules! impl_range_strategy {
    ($two:expr => $($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                let mid = self.start + (*value - self.start) / $two;
                (mid != *value).then_some(mid)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                let lo = *self.start();
                let mid = lo + (*value - lo) / $two;
                (mid != *value).then_some(mid)
            }
        }
    )*};
}
impl_range_strategy!(2 => u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_range_strategy!(2.0 => f32, f64);

/// Runs one property: `cases` iterations of sampled inputs.
///
/// Used by the [`proptest!`] expansion; not public API in the real crate,
/// hidden from docs here.
#[doc(hidden)]
pub fn run_property(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut StdRng, u32)) {
    // Deterministic seed per property so failures reproduce without a
    // persistence file: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..config.cases {
        case(&mut rng, i);
    }
}

/// Runs `f` with the global panic hook swapped for a no-op, so shrink
/// probes don't spray expected panic messages. The previous hook is
/// restored afterwards. (The hook is process-global; a concurrent test
/// that panics inside this window loses its message but still fails.)
#[doc(hidden)]
pub fn __silence_panics<R>(f: impl FnOnce() -> R) -> R {
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(saved);
    result
}

/// The proptest entry macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng, case| {
                $(let mut $arg = $crate::Strategy::generate(&($strat), rng);)*
                // The body as a pure function of the argument tuple, so
                // shrink probes can re-run it on candidate inputs. The
                // destructuring clone shadows the outer bindings — the
                // body never touches them directly.
                let __body = |__tuple: &_| {
                    let ($($arg,)*) = ::core::clone::Clone::clone(__tuple);
                    $body
                };
                let __fails = |__tuple: &_| {
                    ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __body(__tuple)),
                    )
                    .is_err()
                };
                let __failed = $crate::__silence_panics(|| {
                    if !__fails(&($($arg.clone(),)*)) {
                        return false;
                    }
                    // Greedy halving: shrink each argument toward its
                    // strategy's minimum while the failure reproduces,
                    // looping until a whole round makes no progress.
                    let mut __iters = config.max_shrink_iters;
                    let mut __progress = true;
                    while __progress && __iters > 0 {
                        __progress = false;
                        $crate::__shrink_each!(
                            __iters, __progress, __fails,
                            [$($arg),*], $(($arg, $strat,)),*
                        );
                    }
                    true
                });
                if !__failed {
                    return;
                }
                // Re-run the minimized case outside the catch so the
                // original panic surfaces, prefixed with the inputs.
                let inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?} "),*),
                    case $(, $arg)*
                );
                let _ = &inputs;
                $crate::__run_case(&inputs, || { $body });
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// One greedy-halving pass over the argument list: each step shrinks the
/// head argument as far as the failure keeps reproducing, then recurses on
/// the tail. `$all` is the *full* argument list, used to rebuild the input
/// tuple for every probe.
#[doc(hidden)]
#[macro_export]
macro_rules! __shrink_each {
    ($iters:ident, $progress:ident, $fails:ident, [$($all:ident),*] $(,)?) => {};
    ($iters:ident, $progress:ident, $fails:ident, [$($all:ident),*],
     ($arg:ident, $strat:expr,) $(, ($rarg:ident, $rstrat:expr,))* $(,)?) => {
        loop {
            if $iters == 0 {
                break;
            }
            let __candidate = match $crate::Strategy::shrink(&($strat), &$arg) {
                Some(c) => c,
                None => break,
            };
            $iters -= 1;
            let __previous = ::core::mem::replace(&mut $arg, __candidate);
            if $fails(&($($all.clone(),)*)) {
                $progress = true;
            } else {
                $arg = __previous;
                break;
            }
        }
        $crate::__shrink_each!(
            $iters, $progress, $fails,
            [$($all),*] $(, ($rarg, $rstrat,))*
        );
    };
}

/// Runs one case, prefixing any panic with the generated inputs.
#[doc(hidden)]
pub fn __run_case(inputs: &str, case: impl FnOnce()) {
    struct Announce<'a>(&'a str, bool);
    impl Drop for Announce<'_> {
        fn drop(&mut self) {
            if self.1 && std::thread::panicking() {
                eprintln!("proptest case failed with inputs: {}", self.0);
            }
        }
    }
    let mut guard = Announce(inputs, true);
    case();
    guard.1 = false;
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(n in 5usize..40, seed in 0u64..500, x in 0.0f64..0.6) {
            prop_assert!((5..40).contains(&n));
            prop_assert!(seed < 500);
            prop_assert!((0.0..0.6).contains(&x));
        }

        /// Doc comments and trailing commas are accepted.
        #[test]
        fn trailing_comma(a in 0i32..10,) {
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn cases_counted() {
        let mut n = 0;
        crate::run_property(
            "cases_counted",
            &ProptestConfig {
                cases: 24,
                ..ProptestConfig::default()
            },
            |_, _| n += 1,
        );
        assert_eq!(n, 24);
    }

    #[test]
    fn range_shrink_halves_toward_the_low_bound() {
        let s = 10u64..100;
        assert_eq!(Strategy::shrink(&s, &90), Some(50));
        assert_eq!(Strategy::shrink(&s, &50), Some(30));
        assert_eq!(Strategy::shrink(&s, &11), Some(10));
        assert_eq!(Strategy::shrink(&s, &10), None, "minimum is terminal");

        let inc = -8i32..=8;
        assert_eq!(Strategy::shrink(&inc, &8), Some(0));
        assert_eq!(Strategy::shrink(&inc, &-8), None);

        let f = 0.0f64..1.0;
        assert_eq!(Strategy::shrink(&f, &0.5), Some(0.25));
        assert_eq!(Strategy::shrink(&f, &0.0), None);
    }

    static SHRUNK_TO: AtomicU64 = AtomicU64::new(u64::MAX);

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        // Deliberately failing property (not a #[test]; driven below): every
        // probe records its input, so after the run SHRUNK_TO holds the
        // minimized counterexample the final panic reported.
        fn fails_at_ten_or_more(n in 0u64..1000) {
            SHRUNK_TO.store(n, Ordering::SeqCst);
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn failing_case_shrinks_near_the_minimum() {
        let result = std::panic::catch_unwind(fails_at_ten_or_more);
        assert!(result.is_err(), "property must fail");
        let shrunk = SHRUNK_TO.load(Ordering::SeqCst);
        // Greedy halving stops once the half-step passes, so the reported
        // value k still fails (k >= 10) but its half passes (k/2 < 10).
        assert!(
            (10..20).contains(&shrunk),
            "expected a near-minimal counterexample, got {shrunk}"
        );
    }

    #[test]
    fn zero_shrink_iters_disables_shrinking() {
        // With shrinking off the failing input is reported as generated;
        // the property still fails.
        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 4,
                max_shrink_iters: 0,
                ..ProptestConfig::default()
            })]
            fn inner(n in 500u64..1000) {
                SHRUNK_TO.store(n, Ordering::SeqCst);
                prop_assert!(n < 500);
            }
        }
        assert!(std::panic::catch_unwind(inner).is_err());
        assert!(
            SHRUNK_TO.load(Ordering::SeqCst) >= 500,
            "no shrink probes may run when max_shrink_iters is 0"
        );
    }
}
