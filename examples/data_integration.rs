//! The paper's running example (Figure 1 + Examples 4.2, 4.9, §4.5):
//! integrate a *class* document and a *student* document into one *school*
//! document via two simultaneous schema embeddings, then recover both
//! sources and answer the Example 4.8 query on the integrated view.
//!
//! ```sh
//! cargo run --example data_integration
//! ```

use xse::core::{multi, preserve};
use xse::prelude::*;
use xse::workloads::corpus;

fn main() {
    // Figure 1: sources S0 (classes), S1 (students), target S (school).
    let s0 = corpus::fig1_class();
    let s1 = corpus::fig1_student();
    let s = corpus::fig1_school();

    // --- Example 4.2: σ1 : S0 → S, written out exactly as in the paper.
    // The builder accumulates any typo'd tags or unparsable paths instead
    // of panicking; `build()` validates the §4.1 conditions and compiles.
    let sigma1 = EmbeddingBuilder::new(s0.clone(), s.clone())
        .map_type("db", "school")
        .map_type("class", "course")
        .map_type("type", "category")
        .edge("db", "class", "courses/current/course")
        .edge("class", "cno", "basic/cno")
        .edge(
            "class",
            "title",
            "basic/class2/semester[position() = 1]/title",
        )
        .edge("class", "type", "category")
        .edge("type", "regular", "mandatory/regular")
        .edge("type", "project", "advanced/project")
        .edge("regular", "prereq", "required/prereq")
        .edge("prereq", "class", "course")
        .text_edge("cno", "text()")
        .text_edge("title", "text()")
        .text_edge("project", "text()")
        .build()
        .expect("Example 4.2 is valid");

    // --- Example 4.9: σ2 : S1 → S.
    let sigma2 = EmbeddingBuilder::new(s1.clone(), s.clone())
        .map_type("sdb", "school")
        .map_type("cno", "cno2")
        .edge("sdb", "student", "students/student")
        .edge("student", "ssn", "ssn")
        .edge("student", "name", "name")
        .edge("student", "taking", "taking")
        .edge("taking", "cno", "cno2")
        .text_edge("ssn", "text()")
        .text_edge("name", "text()")
        .text_edge("cno", "text()")
        .build()
        .expect("Example 4.9 is valid");

    // Source documents.
    let classes = parse_xml(
        "<db>\
           <class><cno>CS331</cno><title>Databases</title><type><regular><prereq>\
             <class><cno>CS240</cno><title>Algorithms</title><type><project>greedy</project></type></class>\
             <class><cno>CS150</cno><title>Discrete Math</title><type><regular><prereq>\
               <class><cno>CS101</cno><title>Intro</title><type><project>maze</project></type></class>\
             </prereq></regular></type></class>\
           </prereq></regular></type></class>\
         </db>",
    )
    .unwrap();
    let students = parse_xml(
        "<sdb>\
           <student><ssn>111</ssn><name>Ada</name><taking><cno>CS331</cno><cno>CS240</cno></taking></student>\
           <student><ssn>222</ssn><name>Alan</name><taking><cno>CS101</cno></taking></student>\
         </sdb>",
    )
    .unwrap();

    // Map both sources into school documents.
    let out1 = sigma1.apply(&classes).unwrap();
    let out2 = sigma2.apply(&students).unwrap();
    s.validate(&out1.tree).unwrap();
    s.validate(&out2.tree).unwrap();
    println!(
        "σ1 maps {} class nodes into a {}-node school document",
        classes.len(),
        out1.tree.len()
    );
    println!(
        "σ2 maps {} student nodes into a {}-node school document",
        students.len(),
        out2.tree.len()
    );

    // Both embeddings are information preserving on their sources.
    preserve::check_roundtrip(&sigma1, &classes).unwrap();
    preserve::check_roundtrip(&sigma2, &students).unwrap();
    println!("both embeddings roundtrip ✓");

    // Example 4.8: all (transitive) prerequisites of CS331, posed on the
    // *source* schema and answered on the *integrated* document.
    let q =
        parse_query("class[cno/text() = 'CS331']/(type/regular/prereq/class)*/cno/text()").unwrap();
    let translated = sigma1.translate(&q).unwrap();
    let direct: Vec<String> = q
        .eval(&classes)
        .iter()
        .map(|&n| classes.text_value(n).unwrap().to_string())
        .collect();
    let on_target: Vec<String> = translated
        .eval(&out1.tree)
        .iter()
        .map(|&n| out1.tree.text_value(n).unwrap().to_string())
        .collect();
    assert_eq!(direct, on_target);
    println!("Example 4.8 query answers (source == target): {direct:?}");

    // §4.5 multi-source view: combine S0 and S1 into one source S′ whose
    // instances carry both documents (the global-as-view reading). The two
    // schemas share the tag `cno`, so the paper's "w.l.o.g. disjoint names"
    // assumption is realized by prefixing.
    let s0p = multi::prefix_types(&s0, "c_");
    let s1p = multi::prefix_types(&s1, "s_");
    let combined_dtd = multi::combine_sources("sources", &[&s0p, &s1p]).unwrap();
    let classes_p = multi::prefix_instance(&classes, "c_");
    let students_p = multi::prefix_instance(&students, "s_");
    let combined_doc = multi::combine_instances("sources", &[&classes_p, &students_p]);
    combined_dtd.validate(&combined_doc).unwrap();
    let parts = multi::split_instance(&combined_doc);
    assert!(parts[0].equals(&classes_p) && parts[1].equals(&students_p));
    println!(
        "combined source S′ has {} types; its instance splits back into the originals ✓",
        combined_dtd.type_count()
    );
}
