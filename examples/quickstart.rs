//! Quickstart: discover an embedding, map a document, query it, invert it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xse::prelude::*;

fn main() {
    // A small product catalog…
    let source = Dtd::parse(
        "<!ELEMENT catalog (vendor, items)>\
         <!ELEMENT vendor (#PCDATA)>\
         <!ELEMENT items (product)*>\
         <!ELEMENT product (sku, price)>\
         <!ELEMENT sku (#PCDATA)>\
         <!ELEMENT price (#PCDATA)>",
    )
    .unwrap();

    // …and a more general warehouse schema it should live inside.
    let target = Dtd::parse(
        "<!ELEMENT warehouse (meta, inventory)>\
         <!ELEMENT meta (vendor, region)>\
         <!ELEMENT vendor (#PCDATA)>\
         <!ELEMENT region (#PCDATA)>\
         <!ELEMENT inventory (shelf)*>\
         <!ELEMENT shelf (product)>\
         <!ELEMENT product (sku, price, stock)>\
         <!ELEMENT sku (#PCDATA)>\
         <!ELEMENT price (#PCDATA)>\
         <!ELEMENT stock (#PCDATA)>",
    )
    .unwrap();

    // 1. Discover a schema embedding (§5 heuristics). Name similarity is
    //    enough here; a permissive matrix would work too.
    let att = SimilarityMatrix::by_name(&source, &target, 0.05);
    let embedding = find_embedding(&source, &target, &att, &DiscoveryConfig::default())
        .expect("the catalog embeds into the warehouse");
    println!("discovered embedding:\n{}", embedding.describe());

    // 2. Map an instance — type safety is guaranteed (Theorem 4.1).
    let doc = parse_xml(
        "<catalog><vendor>acme</vendor><items>\
           <product><sku>A-1</sku><price>9.99</price></product>\
           <product><sku>B-2</sku><price>3.50</price></product>\
         </items></catalog>",
    )
    .unwrap();
    let out = embedding.apply(&doc).unwrap();
    target.validate(&out.tree).unwrap();
    println!("\nσd(T) =\n{}", out.tree.to_xml_pretty());

    // 3. Translate a query (Theorem 4.3b): same answers on the target.
    let q = parse_query("items/product[sku/text() = 'B-2']/price/text()").unwrap();
    let translated = embedding.translate(&q).unwrap();
    let direct = q.eval(&doc);
    let mapped: Vec<NodeId> = out.idmap.map_result(translated.eval(&out.tree)).collect();
    assert_eq!(direct, mapped);
    println!(
        "query {q}\n  -> answers on source == answers on target through idM ({} hit)",
        direct.len()
    );

    // 4. Invert — the original document comes back (Theorem 4.3a).
    let back = embedding.invert(&out.tree).unwrap();
    assert!(back.equals(&doc));
    println!("\nσd⁻¹(σd(T)) = T  ✓");

    // 5. The compiled embedding is owned and Send + Sync: map a whole batch
    //    of catalogs over scoped threads, results in input order.
    let gen = xse::dtd::InstanceGenerator::new(&source, xse::dtd::GenConfig::default());
    let batch: Vec<XmlTree> = (0..64).map(|seed| gen.generate(seed)).collect();
    let outputs = embedding.apply_batch(&batch);
    assert!(outputs.iter().all(|r| r.is_ok()));
    println!(
        "apply_batch mapped {} generated catalogs in parallel ✓",
        outputs.len()
    );
}
