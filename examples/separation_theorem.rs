//! Theorem 3.1, executable: invertibility and query preservation *separate*
//! for XML mappings — unlike their relational ancestors (Hull 1986).
//!
//! Part 1: the Figure 2 mapping is invertible but not query preserving
//! w.r.t. the XPath fragment `X` (`//B` needs `A^(3k+2)`, inexpressible
//! without Kleene star). We build the paper's handcrafted σd — *not* a §4
//! schema embedding; it deliberately violates prefix-freeness — and watch
//! `X` queries lose answers while the `XR` translation-by-hand succeeds.
//!
//! Part 2: sorting `A` children by value is query preserving w.r.t.
//! position-free `X` but not invertible (the original order is gone).
//!
//! ```sh
//! cargo run --example separation_theorem
//! ```

use xse::prelude::*;

/// The Figure 2 / Example 2.1 mapping: S1 = r→A; A→B,C; B→A+ε; C→ε into
/// S2 = r→A; A→A+ε. Every source node becomes one node of a single A-chain:
/// depth(A)=3k+1, depth(B)=3k+2, depth(C)=3k+3.
fn sigma_fig2(t1: &XmlTree) -> (XmlTree, IdMap) {
    let mut t2 = XmlTree::new("r");
    let mut idm = IdMap::new();
    idm.insert(t2.root(), t1.root());
    // Walk the source: the chain order is A, B, C, then B's A child…
    let mut chain_tip = t2.root();
    let mut cur = t1.children(t1.root()).first().copied();
    while let Some(a_node) = cur {
        // A
        chain_tip = {
            let n = t2.add_element(chain_tip, "A");
            idm.insert(n, a_node);
            n
        };
        let kids = t1.children(a_node);
        let (b_node, c_node) = (kids[0], kids[1]);
        // B then C, one level each.
        chain_tip = {
            let n = t2.add_element(chain_tip, "A");
            idm.insert(n, b_node);
            n
        };
        chain_tip = {
            let n = t2.add_element(chain_tip, "A");
            idm.insert(n, c_node);
            n
        };
        cur = t1.children(b_node).first().copied();
    }
    (t2, idm)
}

/// The inverse: regenerate T top-down from the chain length.
fn sigma_fig2_inverse(t2: &XmlTree) -> XmlTree {
    let mut t1 = XmlTree::new("r");
    let mut out_parent = t1.root();
    // Chain length = 3k for k complete A-blocks.
    let mut depth = 0usize;
    let mut n = t2.children(t2.root()).first().copied();
    while let Some(x) = n {
        depth += 1;
        n = t2.children(x).first().copied();
    }
    assert_eq!(depth % 3, 0, "image chains come in A/B/C triples");
    for _ in 0..depth / 3 {
        let a = t1.add_element(out_parent, "A");
        let b = t1.add_element(a, "B");
        t1.add_element(a, "C");
        out_parent = b;
    }
    t1
}

fn main() {
    let s1 =
        Dtd::parse("<!ELEMENT r (A)><!ELEMENT A (B, C)><!ELEMENT B (A|EMPTY)><!ELEMENT C EMPTY>")
            .unwrap();
    let s2 = Dtd::parse("<!ELEMENT r (A)><!ELEMENT A (A|EMPTY)>").unwrap();

    // ---- Part 1: invertible, not query preserving w.r.t. X.
    let t1 = parse_xml("<r><A><B><A><B><A><B/><C/></A></B><C/></A></B><C/></A></r>").unwrap();
    s1.validate(&t1).unwrap();
    let (t2, idm) = sigma_fig2(&t1);
    s2.validate(&t2).unwrap();
    println!("σd(T) is the A-chain: {}", t2.to_xml());

    let back = sigma_fig2_inverse(&t2);
    assert!(back.equals(&t1));
    println!("σd is invertible ✓ (chain length determines T)");

    // Q = //B in the fragment X: on the source it finds all B's.
    let q = parse_query(".//B").unwrap();
    let source_hits = q.eval(&t1).len();
    // On the target no X query can select exactly the B images: the B's sit
    // at depths 3k+2, and A^(3k+2) is not expressible in X (no Kleene
    // star). Every candidate //-style query over {r, A} selects either all
    // chain nodes or a fixed-depth prefix — demonstrate the gap:
    let all_a = parse_query(".//A").unwrap().eval(&t2).len();
    let b_images: Vec<NodeId> = t2
        .preorder()
        .filter(|&n| idm.source_of(n).is_some_and(|s| t1.tag(s) == Some("B")))
        .collect();
    println!(
        "source //B finds {source_hits}; target has {all_a} A's of which only {} are B-images — \
         no X query carves them out (Theorem 3.1(1))",
        b_images.len()
    );
    // The XR query that does it: A/(A/A/A)* starting offsets — i.e.
    // A/A/(A/A/A)* selects depths 3k+2.
    let xr = parse_query("A/A/(A/A/A)*").unwrap();
    let xr_hits: Vec<NodeId> = xr.eval(&t2);
    let mapped: Vec<NodeId> = idm.map_result(xr_hits.iter().copied()).collect();
    assert_eq!(mapped.len(), source_hits);
    println!("…but the XR query A/A/(A/A/A)* recovers exactly the B's ✓");

    // ---- Part 2: query preserving (position-free X), not invertible.
    let t = parse_xml("<r><A>zeta</A><A>alpha</A><A>mid</A></r>").unwrap();
    let mut sorted_children: Vec<(String, NodeId)> = t
        .children(t.root())
        .iter()
        .map(|&a| (t.text_value(t.children(a)[0]).unwrap().to_string(), a))
        .collect();
    sorted_children.sort();
    let mut t_sorted = XmlTree::new("r");
    for (v, _) in &sorted_children {
        let a = t_sorted.add_element(t_sorted.root(), "A");
        t_sorted.add_text(a, v.clone());
    }
    println!("\nσd' sorts the A children: {}", t_sorted.to_xml());
    // Any position-free X query gets the same answers (sets ignore order):
    for qs in ["A", "A[text() = 'alpha']", "A[text() = 'nope']"] {
        let q = parse_query(qs).unwrap();
        assert_eq!(q.eval(&t).len(), q.eval(&t_sorted).len());
    }
    println!("position-free X queries agree ✓");
    // …but two differently-ordered sources map to the same image:
    let t_other = parse_xml("<r><A>alpha</A><A>mid</A><A>zeta</A></r>").unwrap();
    let mut resorted: Vec<String> = t_other
        .children(t_other.root())
        .iter()
        .map(|&a| {
            t_other
                .text_value(t_other.children(a)[0])
                .unwrap()
                .to_string()
        })
        .collect();
    resorted.sort();
    assert_eq!(
        resorted,
        sorted_children
            .iter()
            .map(|(v, _)| v.clone())
            .collect::<Vec<_>>()
    );
    println!("two distinct sources share one image ⇒ not invertible (Theorem 3.1(2)) ✓");
}
