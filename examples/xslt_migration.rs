//! Data migration through generated XSLT (§4.3): discover an embedding into
//! an evolved schema, emit the forward and inverse stylesheets, run both
//! through the crate's XSLT engine, and "roll back" the migration — the
//! Fagin-style use of inverses the paper's §4.5 highlights.
//!
//! ```sh
//! cargo run --example xslt_migration
//! ```

use xse::prelude::*;
use xse::workloads::noise::{noised_copy, NoiseConfig};
use xse::workloads::simgen;
use xse::xslt::apply_stylesheet;

fn main() {
    // Version 1 of a ticketing schema…
    let v1 = Dtd::parse(
        "<!ELEMENT tickets (ticket)*>\
         <!ELEMENT ticket (id, severity, body)>\
         <!ELEMENT id (#PCDATA)>\
         <!ELEMENT severity (low | high)>\
         <!ELEMENT low EMPTY>\
         <!ELEMENT high EMPTY>\
         <!ELEMENT body (#PCDATA)>",
    )
    .unwrap();

    // …and "version 2": a mechanically evolved copy (wrapped edges, renamed
    // tags, extra fields) — the migration target.
    let copy = noised_copy(&v1, NoiseConfig::level(0.5), 2024);
    let v2 = &copy.target;
    println!("v2 schema:\n{v2}");

    // Discover the migration embedding from the ground-truth matrix (in a
    // real migration this matrix comes from a schema matcher or a human).
    let att = simgen::exact(&v1, &copy);
    let emb = find_embedding(&v1, v2, &att, &DiscoveryConfig::default())
        .expect("v1 embeds in its evolution");

    // Generate both stylesheets, straight off the compiled embedding.
    let forward = emb.generate_forward();
    let inverse = emb.generate_inverse();
    println!(
        "-- forward stylesheet ({} rules) --\n{forward}",
        forward.len()
    );
    println!(
        "-- inverse stylesheet ({} rules) --\n{inverse}",
        inverse.len()
    );

    // Migrate a document with the XSLT engine.
    let doc = parse_xml(
        "<tickets>\
           <ticket><id>T-1</id><severity><high/></severity><body>prod down</body></ticket>\
           <ticket><id>T-2</id><severity><low/></severity><body>typo</body></ticket>\
         </tickets>",
    )
    .unwrap();
    let migrated = apply_stylesheet(&forward, &doc, None).unwrap();
    v2.validate(&migrated).unwrap();
    println!("migrated document:\n{}", migrated.to_xml_pretty());

    // The stylesheet agrees with the direct algorithm…
    let direct = emb.apply(&doc).unwrap().tree;
    assert!(direct.equals(&migrated));

    // …and the inverse stylesheet rolls the migration back, losslessly.
    let rolled_back = apply_stylesheet(&inverse, &migrated, None).unwrap();
    assert!(rolled_back.equals(&doc));
    println!("rollback via inverse stylesheet recovered the original ✓");
}
